// Copyright 2026 The QPSeeker Authors
//
// Deterministic pseudo-random number generation. All stochastic components
// in QPSeeker (data generators, weight init, plan sampling, MCTS rollouts,
// VAE reparameterization noise) draw from an explicitly seeded Rng so every
// experiment is reproducible bit-for-bit.

#ifndef QPS_UTIL_RNG_H_
#define QPS_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace qps {

/// Full generator state, for training checkpoints: restoring it resumes
/// the stream exactly where it left off (including the Box-Muller cache).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  uint64_t have_cached_normal = 0;
  double cached_normal = 0.0;
};

/// xoshiro256** PRNG with splitmix64 seeding. Fast, high quality, and
/// trivially copyable (a copy replays the same stream).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit seed.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork() { return Rng(Next() ^ 0xd1342543de82ef95ULL); }

  /// Snapshot / restore of the exact stream position (checkpoint resume).
  RngState SaveState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.have_cached_normal = have_cached_normal_ ? 1 : 0;
    st.cached_normal = cached_normal_;
    return st;
  }
  void LoadState(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    have_cached_normal_ = st.have_cached_normal != 0;
    cached_normal_ = st.cached_normal;
  }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf(n, s) sampler over ranks {1..n}; precomputes the CDF once.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// Returns a rank in [1, n], rank 1 most likely.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace qps

#endif  // QPS_UTIL_RNG_H_
