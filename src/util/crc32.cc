// Copyright 2026 The QPSeeker Authors

#include "util/crc32.h"

#include <array>

namespace qps {
namespace crc32 {

namespace {

// Slice-by-4 tables: table[0] is the classic byte-at-a-time table, and
// table[k][b] is the CRC of byte b followed by k zero bytes, letting the
// hot loop fold 4 input bytes per iteration (checkpoint files are scanned
// twice — once for the file CRC, once per record — so throughput matters).
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t k = 1; k < 4; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto& t = GetTables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    c = t[3][c & 0xFFu] ^ t[2][(c >> 8) & 0xFFu] ^ t[1][(c >> 16) & 0xFFu] ^
        t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  return ~c;
}

}  // namespace crc32
}  // namespace qps
