// Copyright 2026 The QPSeeker Authors

#include "util/fault.h"

#include <chrono>
#include <cmath>
#include <thread>

namespace qps {
namespace fault {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, ArmedPoint{std::move(spec)});
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

int64_t FaultInjector::Hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FaultInjector::Triggers(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

bool FaultInjector::Fire(ArmedPoint* p) {
  p->hits += 1;
  bool fire = false;
  if (p->spec.trigger_on_hit > 0) {
    fire = p->spec.sticky ? p->hits >= p->spec.trigger_on_hit
                          : p->hits == p->spec.trigger_on_hit;
  } else {
    fire = rng_.Bernoulli(p->spec.probability);
  }
  if (!fire) return false;
  p->triggers += 1;
  if (p->spec.latency_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(p->spec.latency_ms));
  }
  return true;
}

Status FaultInjector::CheckSlow(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  ArmedPoint& p = it->second;
  if (!Fire(&p)) return Status::OK();
  switch (p.spec.code) {
    case StatusCode::kOk:
      return Status::OK();  // latency-only spec
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(p.spec.message);
    case StatusCode::kNotFound:
      return Status::NotFound(p.spec.message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(p.spec.message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(p.spec.message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(p.spec.message);
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(p.spec.message);
    case StatusCode::kAborted:
      return Status::Aborted(p.spec.message);
    case StatusCode::kIOError:
      return Status::IOError(p.spec.message);
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(p.spec.message);
}

double FaultInjector::CorruptSlow(const char* point, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return value;
  ArmedPoint& p = it->second;
  if (!Fire(&p)) return value;
  return p.spec.inject_nan ? std::nan("") : value;
}

}  // namespace fault
}  // namespace qps
