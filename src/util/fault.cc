// Copyright 2026 The QPSeeker Authors

#include "util/fault.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace qps {
namespace fault {

namespace {
/// Thread-local fault context (tenant id); "" = unscoped.
thread_local std::string g_fault_context;
}  // namespace

ScopedContext::ScopedContext(const std::string& context)
    : previous_(g_fault_context) {
  g_fault_context = context;
}

ScopedContext::~ScopedContext() { g_fault_context = previous_; }

const std::string& ScopedContext::Current() { return g_fault_context; }

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, ArmedPoint{std::move(spec)});
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

int64_t FaultInjector::Hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FaultInjector::Triggers(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

bool FaultInjector::Fire(ArmedPoint* p) {
  p->hits += 1;
  bool fire = false;
  if (p->spec.trigger_on_hit > 0) {
    fire = p->spec.sticky ? p->hits >= p->spec.trigger_on_hit
                          : p->hits == p->spec.trigger_on_hit;
  } else {
    fire = rng_.Bernoulli(p->spec.probability);
  }
  if (fire) p->triggers += 1;
  return fire;
}

// Injected latency sleeps on the faulting caller's thread only, after the
// registry lock is released — a stall on one point must not serialize
// unrelated fault checks on other threads.
namespace {
void SleepLatency(double latency_ms) {
  if (latency_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_ms));
  }
}
}  // namespace

namespace {
/// Builds the injected Status for a fired spec. Every injected error
/// carries reason "fault_injected" so retry layers and audit lines can
/// distinguish chaos from organic failures without message matching.
Status StatusFromSpec(const FaultSpec& spec) {
  Status st;
  switch (spec.code) {
    case StatusCode::kOk:
      return Status::OK();  // latency-only spec
    case StatusCode::kInvalidArgument:
      st = Status::InvalidArgument(spec.message);
      break;
    case StatusCode::kNotFound:
      st = Status::NotFound(spec.message);
      break;
    case StatusCode::kOutOfRange:
      st = Status::OutOfRange(spec.message);
      break;
    case StatusCode::kAlreadyExists:
      st = Status::AlreadyExists(spec.message);
      break;
    case StatusCode::kResourceExhausted:
      st = Status::ResourceExhausted(spec.message);
      break;
    case StatusCode::kNotImplemented:
      st = Status::NotImplemented(spec.message);
      break;
    case StatusCode::kAborted:
      st = Status::Aborted(spec.message);
      break;
    case StatusCode::kIOError:
      st = Status::IOError(spec.message);
      break;
    case StatusCode::kDeadlineExceeded:
      st = Status::DeadlineExceeded(spec.message);
      break;
    case StatusCode::kUnavailable:
      st = Status::Unavailable(spec.message);
      break;
    case StatusCode::kInternal:
      st = Status::Internal(spec.message);
      break;
  }
  return std::move(st).SetReason("fault_injected");
}
}  // namespace

Status FaultInjector::CheckSlow(const char* point) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  ArmedPoint& p = it->second;
  // A context-scoped spec ignores (doesn't even count) hits from other
  // contexts: the point was reached, but not by the targeted traffic.
  if (!p.spec.only_context.empty() &&
      p.spec.only_context != ScopedContext::Current()) {
    return Status::OK();
  }
  if (!Fire(&p)) return Status::OK();
  const FaultSpec spec = p.spec;
  lock.unlock();
  SleepLatency(spec.latency_ms);
  return StatusFromSpec(spec);
}

double FaultInjector::CorruptSlow(const char* point, double value) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return value;
  ArmedPoint& p = it->second;
  if (!p.spec.only_context.empty() &&
      p.spec.only_context != ScopedContext::Current()) {
    return value;
  }
  if (!Fire(&p)) return value;
  const FaultSpec spec = p.spec;
  lock.unlock();
  SleepLatency(spec.latency_ms);
  return spec.inject_nan ? std::nan("") : value;
}

}  // namespace fault
}  // namespace qps
