// Copyright 2026 The QPSeeker Authors

#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault.h"
#include "util/logging.h"

namespace qps {
namespace io {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " failed for " + path + ": " + std::strerror(errno);
}

/// Directory part of `path` ("." when there is none).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Some filesystems reject directory fsync; that is not
/// a correctness problem for atomicity, so failures only log.
void SyncDir(const std::string& path) {
  const int dir_fd = ::open(DirName(path).c_str(), O_RDONLY);
  if (dir_fd < 0) return;
  if (::fsync(dir_fd) != 0) {
    QPS_VLOG(1) << "io: directory fsync failed for " << DirName(path) << ": "
                << std::strerror(errno);
  }
  ::close(dir_fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(Errno("open", tmp));

  auto fail = [&](Status st) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  };

  if (Status st = fault::Check("io.write"); !st.ok()) return fail(st);
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IOError(Errno("write", tmp)));
    }
    written += static_cast<size_t>(n);
  }

  if (Status st = fault::Check("io.fsync"); !st.ok()) return fail(st);
  if (::fsync(fd) != 0) return fail(Status::IOError(Errno("fsync", tmp)));
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("close", tmp));
  }

  if (Status st = fault::Check("io.rename"); !st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("rename", tmp + " -> " + path));
  }
  SyncDir(path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return std::move(buf).str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace io
}  // namespace qps
