// Copyright 2026 The QPSeeker Authors
//
// One injectable time source for the whole system. Timers, planning
// deadlines, the circuit breaker, trace spans, and log prefixes all read
// the same monotonic clock, so a test that substitutes ManualClock moves
// every deadline at once and a trace's timestamps line up with log lines.

#ifndef QPS_UTIL_CLOCK_H_
#define QPS_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace qps {

/// Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary (per-clock) epoch. Monotonic.
  virtual int64_t NowNanos() const = 0;

  double NowMicros() const { return static_cast<double>(NowNanos()) * 1e-3; }
  double NowMillis() const { return static_cast<double>(NowNanos()) * 1e-6; }
  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }

  /// The process-wide steady_clock-backed instance. Never null.
  static const Clock* Default();
};

/// std::chrono::steady_clock. Epoch = first use in the process.
class SteadyClock final : public Clock {
 public:
  int64_t NowNanos() const override;
};

/// Manually advanced clock for deterministic tests (breaker cool-downs,
/// deadline handling, trace timestamps). Starts at zero.
class ManualClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return nanos_.load(std::memory_order_relaxed);
  }

  void AdvanceNanos(int64_t delta) {
    nanos_.fetch_add(delta, std::memory_order_relaxed);
  }
  void AdvanceMillis(double ms) {
    AdvanceNanos(static_cast<int64_t>(ms * 1e6));
  }
  void SetMillis(double ms) {
    nanos_.store(static_cast<int64_t>(ms * 1e6), std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> nanos_{0};
};

}  // namespace qps

#endif  // QPS_UTIL_CLOCK_H_
