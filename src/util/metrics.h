// Copyright 2026 The QPSeeker Authors
//
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms. The hot paths (Increment / Set / Record) are single
// relaxed atomic operations on pre-resolved pointers — safe to leave on
// per-rollout and per-operator code paths (BM_CounterIncrement in
// bench_micro shows ~1 ns). Registration takes a mutex once; callers cache
// the returned pointer, which stays valid for the process lifetime:
//
//   static metrics::Counter* const rollouts =
//       metrics::Registry::Global().GetCounter("qps.mcts.rollouts");
//   rollouts->Increment();
//
// Naming convention: `qps.<subsystem>.<name>` (DESIGN.md §8). Snapshot()
// copies every metric under the registration mutex; RenderText/RenderJson
// format a snapshot for the qpsql \metrics meta-command and the bench
// harness's BENCH_*.json stage breakdowns.

#ifndef QPS_UTIL_METRICS_H_
#define QPS_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qps {
namespace metrics {

/// Monotonically increasing integer (events, rows, fallbacks).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins double (epoch loss, learning rate, breaker state).
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// Fixed exponential buckets tuned for latencies in milliseconds:
/// [0, 1 µs), then ×2 per bucket up to ~2 minutes, plus an overflow bucket.
/// Record() touches one bucket counter plus sum/count — all relaxed
/// atomics, no lock, no allocation.
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;  ///< finite buckets + 1 overflow

  void Record(double value_ms);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Upper bound of finite bucket `i` in ms (i in [0, kNumBuckets)).
  static double BucketUpperBound(int i);
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets + 1] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  ///< double, CAS-accumulated
};

/// Point-in-time copy of one histogram, with percentile estimation by
/// linear interpolation inside the owning bucket.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  std::vector<int64_t> buckets;  ///< kNumBuckets + 1 entries

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  double Percentile(double p) const;  ///< p in [0, 100]
};

struct Snapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// The global name -> metric table. Thread-safe. Metrics are never removed;
/// pointers returned by Get* stay valid for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  Snapshot TakeSnapshot() const;

  /// Zeroes every registered metric (bench harness runs, tests).
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Human-readable snapshot (the qpsql \metrics output).
std::string RenderText(const Snapshot& snapshot);

/// Compact JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
///  "sum":..,"mean":..,"p50":..,"p90":..,"p99":..}}}
std::string RenderJson(const Snapshot& snapshot);

}  // namespace metrics
}  // namespace qps

#endif  // QPS_UTIL_METRICS_H_
