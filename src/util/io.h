// Copyright 2026 The QPSeeker Authors
//
// Durable file I/O for checkpoints. AtomicWriteFile implements the classic
// crash-safe replacement protocol — write a temp file in the target
// directory, fsync it, rename() over the destination, fsync the directory —
// so a reader never observes a half-written file: it sees either the old
// complete contents or the new complete contents, even across a crash at
// any point in the sequence.
//
// Fault points (util/fault): "io.write", "io.fsync", "io.rename". Arming
// one simulates a crash at that stage (the destination is left untouched),
// which is how the torn-write recovery tests prove the protocol.

#ifndef QPS_UTIL_IO_H_
#define QPS_UTIL_IO_H_

#include <string>

#include "util/status.h"

namespace qps {
namespace io {

/// Atomically replaces `path` with `contents` (temp + fsync + rename).
/// On any error the destination keeps its previous contents; the temp file
/// is cleaned up on the error paths this process survives.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Reads an entire file into memory. kIOError when the file cannot be
/// opened or read; never returns partial contents.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

}  // namespace io
}  // namespace qps

#endif  // QPS_UTIL_IO_H_
