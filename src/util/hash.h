// Copyright 2026 The QPSeeker Authors
//
// Small deterministic hashing helpers. Unlike std::hash, these are fixed
// across platforms and process runs, so values derived from them (fuzzer
// behavior signatures, corpus file names) are stable artifacts that can be
// compared between runs and checked into the repository.

#ifndef QPS_UTIL_HASH_H_
#define QPS_UTIL_HASH_H_

#include <cstdint>
#include <string>

namespace qps {
namespace util {

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds `value` into a running hash (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// FNV-1a over bytes; stable across platforms.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(const std::string& s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return HashBytes(s.data(), s.size(), seed);
}

}  // namespace util
}  // namespace qps

#endif  // QPS_UTIL_HASH_H_
