// Copyright 2026 The QPSeeker Authors
//
// Wall-clock stopwatch used for planning budgets and latency accounting.
// Reads through util/clock.h, so tests that inject a ManualClock control
// timers, deadlines, and the circuit breaker from one place.

#ifndef QPS_UTIL_TIMER_H_
#define QPS_UTIL_TIMER_H_

#include "util/clock.h"

namespace qps {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  explicit Timer(const Clock* clock = Clock::Default())
      : clock_(clock), start_(clock_->NowNanos()) {}

  void Reset() { start_ = clock_->NowNanos(); }

  double ElapsedSeconds() const {
    return static_cast<double>(clock_->NowNanos() - start_) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(clock_->NowNanos() - start_) * 1e-6;
  }
  double ElapsedMicros() const {
    return static_cast<double>(clock_->NowNanos() - start_) * 1e-3;
  }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace qps

#endif  // QPS_UTIL_TIMER_H_
