// Copyright 2026 The QPSeeker Authors
//
// Wall-clock stopwatch used for planning budgets and latency accounting.

#ifndef QPS_UTIL_TIMER_H_
#define QPS_UTIL_TIMER_H_

#include <chrono>

namespace qps {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qps

#endif  // QPS_UTIL_TIMER_H_
