// Copyright 2026 The QPSeeker Authors

#include "util/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace qps {
namespace metrics {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// CAS-accumulates `delta` into a double stored as bits.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(old_bits,
                                      DoubleBits(BitsDouble(old_bits) + delta),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";  // keep the JSON valid
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Minimal JSON string escaping (metric names are dotted identifiers, but
/// stay safe for arbitrary input).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

uint64_t Gauge::Encode(double v) { return DoubleBits(v); }
double Gauge::Decode(uint64_t bits) { return BitsDouble(bits); }

double Histogram::BucketUpperBound(int i) {
  // Bucket 0: [0, 1 µs); bucket i: [2^(i-1) µs, 2^i µs). Bounds in ms.
  return 0.001 * std::pow(2.0, i);
}

void Histogram::Record(double value_ms) {
  if (std::isnan(value_ms)) return;
  int bucket = kNumBuckets;  // overflow
  for (int i = 0; i < kNumBuckets; ++i) {
    if (value_ms < BucketUpperBound(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value_ms);
}

double Histogram::sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count);
  int64_t seen = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    const int64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double lo = i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1);
      if (i >= Histogram::kNumBuckets) return lo;  // overflow: lower bound
      const double hi = Histogram::BucketUpperBound(i);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = hist->count();
    hs.sum = hist->sum();
    for (int i = 0; i <= Histogram::kNumBuckets; ++i) {
      hs.buckets.push_back(hist->bucket_count(i));
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string RenderText(const Snapshot& snapshot) {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(buf, sizeof(buf), "%-44s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(buf, sizeof(buf), "%-44s %.6g\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& h : snapshot.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-44s count=%lld mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms\n",
                  h.name.c_str(), static_cast<long long>(h.count), h.mean(),
                  h.Percentile(50), h.Percentile(90), h.Percentile(99));
    out += buf;
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string RenderJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(h.name) + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + FormatDouble(h.sum) +
           ",\"mean\":" + FormatDouble(h.mean()) +
           ",\"p50\":" + FormatDouble(h.Percentile(50)) +
           ",\"p90\":" + FormatDouble(h.Percentile(90)) +
           ",\"p99\":" + FormatDouble(h.Percentile(99));
    // Raw bucket counts plus their finite upper bounds (the final bucket
    // is the overflow), so scrapers and BENCH_*.json consumers re-derive
    // percentiles exactly instead of trusting the summary above.
    out += ",\"le\":[";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i > 0) out += ",";
      out += FormatDouble(Histogram::BucketUpperBound(i));
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace metrics
}  // namespace qps
