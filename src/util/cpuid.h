// Copyright 2026 The QPSeeker Authors
//
// Runtime CPU-feature dispatch for the SIMD kernels. One detection at first
// use picks the widest ISA the host supports; `QPS_FORCE_SCALAR=1` in the
// environment pins the portable scalar kernels (the tier-1 forced-scalar
// leg runs the whole test suite this way), and tests can install an
// explicit override to compare kernel variants inside one process.

#ifndef QPS_UTIL_CPUID_H_
#define QPS_UTIL_CPUID_H_

namespace qps {
namespace simd {

/// Kernel tiers, widest last. kAvx2 implies the 256-bit integer ISA the
/// int8 GEMM micro-kernel needs (AVX2 = VEX-encoded integer ops);
/// kAvx512Vnni additionally implies AVX512F + AVX512-VNNI (vpdpbusd, the
/// fused u8*s8 dot-product accumulate). Each tier is a superset of the
/// ones below it, so dispatch can fall through to any lower tier.
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512Vnni = 2,
};

/// The widest ISA the host CPU supports, ignoring every override. Detected
/// once and cached.
Isa DetectIsa();

/// The ISA the dispatched kernels actually use: a test override if one is
/// installed, else kScalar when QPS_FORCE_SCALAR=1 was set at first call,
/// else DetectIsa(). Cheap enough for per-GEMM-call dispatch (one relaxed
/// atomic load).
Isa ActiveIsa();

const char* IsaName(Isa isa);

/// True when the environment pinned the scalar kernels (QPS_FORCE_SCALAR=1
/// at the time of the first ActiveIsa/ScalarForcedByEnv call).
bool ScalarForcedByEnv();

/// Test hooks: force kernels to `isa` (requests above DetectIsa() are
/// clamped to it, so forcing kAvx2 on a scalar-only host stays safe).
void SetIsaOverrideForTest(Isa isa);
void ClearIsaOverrideForTest();

}  // namespace simd
}  // namespace qps

#endif  // QPS_UTIL_CPUID_H_
