// Copyright 2026 The QPSeeker Authors

#include "util/threadpool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace util {

namespace {

struct PoolMetrics {
  metrics::Counter* tasks;
  metrics::Histogram* queue_ms;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      return PoolMetrics{reg.GetCounter("qps.pool.tasks"),
                         reg.GetHistogram("qps.pool.queue_ms")};
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads > 0 ? num_threads : 0));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (workers_.empty()) {
    // No workers: run inline so scheduled work is never silently dropped.
    QPS_TRACE_SPAN("pool.task");
    PoolMetrics::Get().tasks->Increment();
    fn();
    return;
  }
  Timer queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back([fn = std::move(fn), queued] {
      PoolMetrics::Get().queue_ms->Record(queued.ElapsedMillis());
      QPS_TRACE_SPAN("pool.task");
      PoolMetrics::Get().tasks->Increment();
      fn();
    });
  }
  cv_.notify_one();
}

bool ThreadPool::TrySchedule(std::function<void()> fn, size_t max_queued) {
  if (workers_.empty()) {
    QPS_TRACE_SPAN("pool.task");
    PoolMetrics::Get().tasks->Increment();
    fn();
    return true;
  }
  Timer queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= max_queued) return false;
    queue_.push_back([fn = std::move(fn), queued] {
      PoolMetrics::Get().queue_ms->Record(queued.ElapsedMillis());
      QPS_TRACE_SPAN("pool.task");
      PoolMetrics::Get().tasks->Increment();
      fn();
    });
  }
  cv_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking: small chunks balance ragged bodies, and the atomic
  // cursor guarantees each index is claimed exactly once.
  const int64_t participants = static_cast<int64_t>(workers_.size()) + 1;
  const int64_t chunk = std::max<int64_t>(1, n / (4 * participants));
  auto cursor = std::make_shared<std::atomic<int64_t>>(0);
  auto pending = std::make_shared<std::atomic<int64_t>>(0);
  auto done_mu = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();

  auto drain = [cursor, chunk, n, &body] {
    for (;;) {
      const int64_t begin = cursor->fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const int64_t end = std::min(n, begin + chunk);
      for (int64_t i = begin; i < end; ++i) body(i);
    }
  };

  // One helper task per worker; each drains chunks until the loop is done.
  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), (n + chunk - 1) / chunk);
  pending->store(helpers, std::memory_order_relaxed);
  for (int64_t t = 0; t < helpers; ++t) {
    Schedule([drain, pending, done_mu, done_cv] {
      drain();
      if (pending->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(*done_mu);
        done_cv->notify_all();
      }
    });
  }
  drain();  // the caller participates instead of blocking idle
  std::unique_lock<std::mutex> lock(*done_mu);
  done_cv->wait(lock, [&] { return pending->load(std::memory_order_acquire) == 0; });
}

}  // namespace util
}  // namespace qps
