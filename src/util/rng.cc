// Copyright 2026 The QPSeeker Authors

#include "util/rng.h"

#include <algorithm>

#include "util/logging.h"

namespace qps {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  // Fatal in all build modes: sampling an empty distribution would read out
  // of bounds below.
  QPS_CHECK(!weights.empty()) << "Rng::Categorical over empty weights";
  double total = 0.0;
  for (double w : weights) total += w;
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n) {
  QPS_CHECK(n > 0) << "ZipfDistribution needs at least one rank";
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace qps
