// Copyright 2026 The QPSeeker Authors

#include "serve/tenant.h"

#include <algorithm>

namespace qps {
namespace serve {

Status ValidateTenantId(const std::string& id) {
  if (id.empty()) {
    return Status::InvalidArgument("tenant id must not be empty");
  }
  if (id.size() > 64) {
    return Status::InvalidArgument("tenant id too long (max 64): " + id);
  }
  for (char c : id) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) {
      return Status::InvalidArgument(
          "tenant id must match [a-z0-9_]+ (metric-name alphabet): " + id);
    }
  }
  return Status::OK();
}

uint64_t TenantHash(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  // splitmix64 finalizer. Raw FNV-1a diffuses short, near-identical keys
  // (tenant_00, tenant_01, ...) into one narrow hash range, which parks
  // every such tenant on the same ring arc; the avalanche spreads them.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

ShardRing::ShardRing(int num_shards, int replicas)
    : num_shards_(std::max(1, num_shards)) {
  const int reps = std::max(1, replicas);
  points_.reserve(static_cast<size_t>(num_shards_) * static_cast<size_t>(reps));
  for (int s = 0; s < num_shards_; ++s) {
    for (int r = 0; r < reps; ++r) {
      const std::string node =
          "shard:" + std::to_string(s) + "#" + std::to_string(r);
      points_.push_back({TenantHash(node), s});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

int ShardRing::ShardFor(std::string_view tenant_id) const {
  const uint64_t h = TenantHash(tenant_id);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t key) { return p.hash < key; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->shard;
}

Status TenantRegistry::Add(TenantSpec spec) {
  QPS_RETURN_IF_ERROR(ValidateTenantId(spec.tenant_id));
  if (spec.deps.planner_name != "baseline" && spec.deps.model == nullptr) {
    return Status::InvalidArgument("tenant '" + spec.tenant_id +
                                   "': backend '" + spec.deps.planner_name +
                                   "' requires a model");
  }
  if (spec.quota.shed_to_baseline && spec.deps.baseline == nullptr) {
    return Status::InvalidArgument(
        "tenant '" + spec.tenant_id +
        "': shed_to_baseline requires a baseline planner");
  }
  // Copy the key out first: the map node's key copy and the value move
  // from `spec` are unsequenced relative to each other.
  const std::string id = spec.tenant_id;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(id, std::move(spec));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("tenant already registered: " + id);
  }
  return Status::OK();
}

Status TenantRegistry::Remove(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.erase(tenant_id) == 0) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return Status::OK();
}

StatusOr<TenantSpec> TenantRegistry::Get(const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return it->second;
}

bool TenantRegistry::Contains(const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(tenant_id) > 0;
}

Status TenantRegistry::UpdateModel(
    const std::string& tenant_id,
    std::shared_ptr<const core::QpSeeker> model) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  it->second.deps.model = std::move(model);
  return Status::OK();
}

std::vector<std::string> TenantRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [id, spec] : tenants_) out.push_back(id);
  return out;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace serve
}  // namespace qps
