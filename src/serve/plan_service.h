// Copyright 2026 The QPSeeker Authors
//
// The concurrent planning service: N clients submit queries, the service
// plans them on a bounded worker pool and coalesces their model
// evaluations into shared batched forwards. The pipeline per request:
//
//   Submit(PlanRequest)
//     -> admission: a per-service pending counter bounds admitted-but-
//        unstarted requests at `max_queue`; a full queue sheds the request
//        (kResourceExhausted) or, when shed_to_baseline is set, degrades it
//        to an inline DP plan on the caller's thread — load never builds an
//        unbounded backlog. When the service runs on a shared (shard) pool,
//        `pool_max_queue` is a second backstop on the pool itself.
//     -> planning: a per-worker core::Planner instance (backends keep
//        per-request state like breaker windows, so instances are not
//        shared across threads) runs with the request deadline and a
//        BatchRendezvous evaluate hook the service injects itself — the
//        hook is not settable by callers, so nothing can silently bypass
//        (or race) the rendezvous.
//     -> batching: every model evaluation from every in-flight request
//        meets in the rendezvous and rides a fused PredictPlansMulti
//        forward. Plans stay bit-identical to serial planning (see
//        batch_rendezvous.h).
//     -> deadline ladder: an expired deadline truncates the anytime search
//        and returns the best plan found so far with deadline_hit set;
//        only fail_on_deadline requests see kDeadlineExceeded.
//
// Construction goes through PlanServiceDeps (named fields, shared model
// ownership from the start) instead of the old positional raw-pointer
// Create — the sharded multi-tenant layer (sharded_service.h) builds one
// such core per tenant on a shard-owned pool.
//
// Metrics: qps.serve.{requests,inflight,queue_depth,queue_ms,latency_ms,
// batch_size,batch_plans,deadline_misses,shed} and
// qps.serve.retries.{attempts,exhausted,success_after_retry}; services
// labelled with a tenant id additionally feed
// qps.tenant.{requests,shed,latency_ms}.<id> windowed series. Trace spans:
// serve.submit, serve.plan, serve.batch_flush. Fault points (util/fault.h):
// serve.submit fires on the submitting thread before admission;
// planning runs under a fault::ScopedContext carrying the tenant id, so
// chaos specs scoped with only_context hit one tenant's traffic only.

#ifndef QPS_SERVE_PLAN_SERVICE_H_
#define QPS_SERVE_PLAN_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/planner_backends.h"
#include "serve/batch_rendezvous.h"
#include "serve/retry.h"
#include "util/cancel.h"

namespace qps {
namespace obs {
class AuditLog;
class WindowedCounter;
class WindowedHistogram;
}  // namespace obs

namespace serve {

/// Everything a PlanService plans *with*: the backend, the model, and the
/// traditional planner. Named fields replace the old positional Create
/// signature; the model is shared from construction, so there is no
/// pre-/post-SwapModel ownership split inside the service.
struct PlanServiceDeps {
  /// Backend built per worker via core::MakePlanner: "baseline", "neural",
  /// "hybrid", or "guarded".
  std::string planner_name = "baseline";

  /// The serving model. May be null only for the "baseline" backend (no
  /// rendezvous is created without a model). Callers owning the model
  /// elsewhere can pass a non-owning alias:
  /// std::shared_ptr<const core::QpSeeker>(std::shared_ptr<void>(), &m).
  std::shared_ptr<const core::QpSeeker> model;

  /// Traditional DP planner; required by every backend except "neural",
  /// and by shed_to_baseline. Non-owning.
  const optimizer::Planner* baseline = nullptr;

  /// Routing / MCTS / guard-rail configuration (per-backend subset used).
  core::GuardedOptions guard_options;
};

/// One planning request: the value type Submit consumes. Callers set what
/// they own (query, tenant, deadline, seed); the service owns the evaluate
/// hook, the rendezvous, and the worker placement.
struct PlanRequest {
  query::Query query;

  /// Tenant attribution for routing (ShardedPlanService), audit lines, and
  /// qps.tenant.* metrics. Empty = the single-tenant default.
  std::string tenant_id;

  /// Planning deadline in ms (0 = the service default).
  double deadline_ms = 0.0;

  /// When true a blown deadline returns kDeadlineExceeded instead of the
  /// best-effort plan.
  bool fail_on_deadline = false;

  /// Pins per-request MCTS randomness (0 = backend seed); plans become a
  /// function of (query, seed) alone, independent of scheduling.
  uint64_t seed = 0;

  /// Cooperative cancellation: the caller keeps a reference and calls
  /// Cancel(); planning observes it at rollout/step/DP boundaries and the
  /// request resolves kAborted (reason "cancelled") promptly. Null = not
  /// cancellable. When fail_on_deadline is set and no token is supplied,
  /// the service arms one internally so a blown deadline aborts the search
  /// instead of letting it run to its budget.
  std::shared_ptr<util::CancelToken> cancel;

  /// Set by the sharded layer when this request was admitted as a breaker
  /// recovery probe (serve/health.h); callers leave it false.
  bool health_probe = false;
};

/// Per-attempt outcome hook, invoked on the planning thread after every
/// planning attempt (including each retry). `final_attempt` is true when no
/// further retry will be taken — the request resolves with this outcome.
/// Sheds and routing rejections do NOT reach this hook (load is not
/// health). The sharded layer binds this to its HealthMonitor.
using AttemptCallback =
    std::function<void(const PlanRequest&, const Status&, bool final_attempt)>;

struct PlanServiceOptions {
  /// Planner slots, and worker threads when the service owns its pool.
  /// 0 runs every request inline on the caller (never sheds).
  int workers = 4;

  /// Admission bound: requests beyond `max_queue` admitted-but-unstarted
  /// ones are shed instead of enqueued. This is the per-tenant quota knob
  /// in sharded serving: a hot tenant exhausts its own bound, not the
  /// shard's pool.
  size_t max_queue = 32;

  /// External worker pool (non-owning). Null = the service creates and
  /// owns a pool of `workers` threads. Sharded serving points every tenant
  /// core of a shard at the shard's pool; the destructor then quiesces
  /// (waits out scheduled tasks) instead of tearing the pool down.
  util::ThreadPool* pool = nullptr;

  /// Backstop bound on an external pool's queue (0 = none): even when a
  /// tenant is under its own quota, a shard drowning in aggregate traffic
  /// sheds. Ignored for service-owned pools, where max_queue already
  /// bounds the pool's only user.
  size_t pool_max_queue = 0;

  /// Tenant label. Non-empty: per-request accounting is mirrored into
  /// qps.tenant.{requests,shed,latency_ms}.<tenant_id> windowed series and
  /// stamped on audit records.
  std::string tenant_id;

  /// Deadline applied to requests that don't carry their own (0 = none).
  double default_deadline_ms = 0.0;

  /// Shed policy: false rejects with kResourceExhausted; true degrades the
  /// request to the traditional DP planner, run inline on the submitting
  /// thread (requires a baseline planner).
  bool shed_to_baseline = false;

  /// Cross-query batching knobs (see BatchRendezvousOptions).
  int max_batch = 16;
  double flush_timeout_ms = 0.5;

  /// Optional per-request audit log (obs/audit.h). Non-owning: the caller
  /// keeps the log alive for the service's lifetime. Every terminal
  /// outcome — ok, error, shed, shed_degraded — appends one JSON line.
  obs::AuditLog* audit = nullptr;

  /// Worker-side retry policy for transient planning failures (see
  /// serve/retry.h): a retryable attempt re-plans on the same worker after
  /// a deadline-budgeted backoff. Disabled by default (max_retries == 0).
  RetryPolicy retry;

  /// Per-attempt outcome hook; see AttemptCallback. Null = no hook.
  AttemptCallback on_attempt;
};

/// Owns the planning backends and the rendezvous (and the worker pool,
/// unless deps point it at a shared one). Thread-safe: Submit may be
/// called from any number of client threads.
class PlanService {
 public:
  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;      ///< OK results delivered
    int64_t errors = 0;         ///< non-OK results (excluding rejects)
    int64_t shed = 0;           ///< admission-control rejections + degrades
    int64_t shed_degraded = 0;  ///< of `shed`, served by the inline baseline
    int64_t deadline_hits = 0;  ///< best-effort plans under an expired deadline
    int64_t retry_attempts = 0;  ///< worker-side retries taken
    int64_t retry_exhausted = 0;  ///< gave up: cap or deadline budget
    int64_t retry_successes = 0;  ///< requests that succeeded after >=1 retry
    BatchRendezvous::Stats batching;
  };

  /// Builds one `deps.planner_name` backend per worker via
  /// core::MakePlanner. Returns kInvalidArgument for unknown backends or a
  /// shed_to_baseline config without a baseline.
  static StatusOr<std::unique_ptr<PlanService>> Create(
      PlanServiceDeps deps, PlanServiceOptions options = {});

  /// Deprecated positional shim, kept for one PR: forwards to the
  /// PlanServiceDeps overload with a non-owning model alias.
  [[deprecated("use Create(PlanServiceDeps, PlanServiceOptions)")]]
  static StatusOr<std::unique_ptr<PlanService>> Create(
      const std::string& planner_name, const core::QpSeeker* model,
      const optimizer::Planner* baseline, const core::GuardedOptions& gopts,
      PlanServiceOptions options = {});

  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Submits one request. The future resolves to the PlanResult, or to
  /// kResourceExhausted when the request was shed with no baseline to
  /// degrade to. The batch-evaluate hook is injected by the service and
  /// cannot be overridden per request.
  std::future<StatusOr<core::PlanResult>> Submit(PlanRequest request);

  /// Routes the request straight down the shed path — inline baseline
  /// degrade when shed_to_baseline is configured, reject otherwise — with
  /// `reason` ("quarantined", ...) stamped on the audit record and the
  /// rejection status. The sharded layer uses this to keep a quarantined
  /// tenant's traffic off the shard pool while still serving it a plan.
  std::future<StatusOr<core::PlanResult>> SubmitDegraded(PlanRequest request,
                                                         const char* reason);

  /// Requests currently being planned (not queued).
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Requests admitted but not yet started on a worker.
  size_t queue_depth() const {
    return static_cast<size_t>(pending_.load(std::memory_order_relaxed));
  }

  /// One coherent snapshot: counters and batching stats are read under
  /// both locks at once, so a concurrent SwapModel can never show a
  /// rendezvous's flushes both in `batching` and missing from the retired
  /// accumulator (or vice versa).
  Stats stats() const;

  /// Aggregated guard/breaker counters across the per-worker planners.
  core::GuardStats guard_stats() const;

  /// Atomically replaces the serving model under in-flight traffic: builds
  /// fresh per-slot planners and a fresh rendezvous for `model`, quiesces
  /// every planner slot (in-flight requests finish on the model they
  /// started with), and swaps. Requests submitted after SwapModel returns
  /// plan against the new model; the shared_ptr keeps the old model alive
  /// until its last in-flight reader drops it. On error (e.g. planner
  /// construction fails) the old model keeps serving. Designed as the
  /// ModelManager swap hook; safe to call concurrently with Submit.
  Status SwapModel(std::shared_ptr<const core::QpSeeker> model);

  /// Blocks until every scheduled task has finished (admitted requests
  /// resolve their futures first). With no concurrent Submits the service
  /// is idle afterwards — the sharded layer quiesces a tenant core this
  /// way before destroying it, since a shared pool cannot be drained by
  /// tearing it down.
  void Quiesce();

  const PlanServiceOptions& options() const { return options_; }

 private:
  PlanService(PlanServiceDeps deps, PlanServiceOptions options);

  struct Request;
  struct PlannerSlot;

  util::ThreadPool& active_pool() const {
    return options_.pool != nullptr ? *options_.pool : *owned_pool_;
  }

  void RunRequest(Request& req);
  /// Terminal shed path: degrade to the inline baseline or reject, plus
  /// metrics/audit/stats bookkeeping. Runs on the submitting thread.
  /// `reason` is the machine-readable shed cause ("shed_queue_full",
  /// "shed_pool_backstop", "quarantined"), stamped on the audit record and
  /// carried in Status::reason() on rejection.
  void ShedRequest(Request& req, const char* reason);
  StatusOr<core::PlanResult> PlanShedded(const query::Query& q,
                                         const char* reason);
  void TaskStarted();
  void TaskFinished();

  std::shared_ptr<const core::QpSeeker> model_;
  PlanServiceOptions options_;

  /// Create() deps, kept for rebuilding planners in SwapModel.
  std::string planner_name_;
  const optimizer::Planner* baseline_ = nullptr;
  core::GuardedOptions gopts_;

  std::vector<std::unique_ptr<PlannerSlot>> slots_;
  std::atomic<size_t> next_slot_{0};

  /// Dedicated baseline instance for the shed-degrade path (inline on the
  /// submitting thread, so it must not contend for planner slots).
  std::unique_ptr<core::Planner> shed_planner_;
  std::mutex shed_mu_;

  /// Guards model_/rendezvous_/retired_batching_ across hot swaps. Lock
  /// order where others are held: slot mutex -> model_mu_ (SwapModel
  /// acquires every slot mutex before this one); stats() takes stats_mu_
  /// and model_mu_ together via std::scoped_lock (deadlock-avoiding, no
  /// other path nests the two).
  mutable std::mutex model_mu_;
  std::shared_ptr<BatchRendezvous> rendezvous_;
  /// Batching counters accumulated from rendezvous retired by SwapModel.
  BatchRendezvous::Stats retired_batching_;

  /// Admitted-but-unstarted requests: the admission bound and queue gauge.
  std::atomic<int64_t> pending_{0};
  std::atomic<int> inflight_{0};

  /// Scheduled-but-unfinished tasks, for Quiesce(). Counted under a mutex
  /// (not an atomic) so the cv wait is race-free.
  std::mutex outstanding_mu_;
  std::condition_variable outstanding_cv_;
  int64_t outstanding_ = 0;

  mutable std::mutex stats_mu_;
  Stats stats_;

  /// Per-tenant windowed mirrors; null unless options_.tenant_id is set.
  obs::WindowedCounter* tenant_requests_ = nullptr;
  obs::WindowedCounter* tenant_shed_ = nullptr;
  obs::WindowedHistogram* tenant_latency_ = nullptr;

  /// Declared last: its destructor drains queued tasks, which still touch
  /// the members above. Null when running on an external pool (the
  /// destructor quiesces instead).
  std::unique_ptr<util::ThreadPool> owned_pool_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_PLAN_SERVICE_H_
