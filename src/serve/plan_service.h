// Copyright 2026 The QPSeeker Authors
//
// The concurrent planning service: N clients submit queries, the service
// plans them on a bounded worker pool and coalesces their model
// evaluations into shared batched forwards. The pipeline per request:
//
//   Submit(query, deadline)
//     -> admission: util::ThreadPool::TrySchedule against a bounded queue;
//        a full queue sheds the request (kResourceExhausted) or, when
//        shed_to_baseline is set, degrades it to an inline DP plan on the
//        caller's thread — load never builds an unbounded backlog.
//     -> planning: a per-worker core::Planner instance (backends keep
//        per-request state like breaker windows, so instances are not
//        shared across threads) runs with the request deadline and a
//        BatchRendezvous evaluate hook injected via PlanRequestOptions.
//     -> batching: every model evaluation from every in-flight request
//        meets in the rendezvous and rides a fused PredictPlansMulti
//        forward. Plans stay bit-identical to serial planning (see
//        batch_rendezvous.h).
//     -> deadline ladder: an expired deadline truncates the anytime search
//        and returns the best plan found so far with deadline_hit set;
//        only fail_on_deadline requests see kDeadlineExceeded.
//
// Metrics: qps.serve.{requests,inflight,queue_depth,queue_ms,latency_ms,
// batch_size,batch_plans,deadline_misses,shed}. Trace spans: serve.submit,
// serve.plan, serve.batch_flush.

#ifndef QPS_SERVE_PLAN_SERVICE_H_
#define QPS_SERVE_PLAN_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/planner_backends.h"
#include "serve/batch_rendezvous.h"

namespace qps {
namespace obs {
class AuditLog;
}  // namespace obs

namespace serve {

struct PlanServiceOptions {
  /// Planning workers. 0 runs every request inline on the caller.
  int workers = 4;

  /// Admission-queue bound: requests beyond `max_queue` waiting tasks are
  /// shed instead of enqueued.
  size_t max_queue = 32;

  /// Deadline applied to requests that don't carry their own (0 = none).
  double default_deadline_ms = 0.0;

  /// Shed policy: false rejects with kResourceExhausted; true degrades the
  /// request to the traditional DP planner, run inline on the submitting
  /// thread (requires a baseline planner).
  bool shed_to_baseline = false;

  /// Cross-query batching knobs (see BatchRendezvousOptions).
  int max_batch = 16;
  double flush_timeout_ms = 0.5;

  /// Optional per-request audit log (obs/audit.h). Non-owning: the caller
  /// keeps the log alive for the service's lifetime. Every terminal
  /// outcome — ok, error, shed, shed_degraded — appends one JSON line.
  obs::AuditLog* audit = nullptr;
};

/// Owns the planning backends, the worker pool, and the rendezvous.
/// Thread-safe: Submit may be called from any number of client threads.
class PlanService {
 public:
  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;      ///< OK results delivered
    int64_t errors = 0;         ///< non-OK results (excluding rejects)
    int64_t shed = 0;           ///< admission-control rejections + degrades
    int64_t shed_degraded = 0;  ///< of `shed`, served by the inline baseline
    int64_t deadline_hits = 0;  ///< best-effort plans under an expired deadline
    BatchRendezvous::Stats batching;
  };

  /// Builds one `planner_name` backend per worker via core::MakePlanner.
  /// `model` may be null only for the "baseline" backend (no rendezvous is
  /// created without a model). Returns kInvalidArgument for unknown names.
  static StatusOr<std::unique_ptr<PlanService>> Create(
      const std::string& planner_name, const core::QpSeeker* model,
      const optimizer::Planner* baseline, const core::GuardedOptions& gopts,
      PlanServiceOptions options = {});

  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Submits one query. The future resolves to the PlanResult, or to
  /// kResourceExhausted when the request was shed with no baseline to
  /// degrade to. `ropts.evaluate` is overridden by the service's
  /// rendezvous hook; deadline/seed/fail_on_deadline pass through.
  std::future<StatusOr<core::PlanResult>> Submit(query::Query q,
                                                 core::PlanRequestOptions ropts = {});

  /// Requests currently being planned (not queued).
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Tasks admitted but not yet started.
  size_t queue_depth() const { return pool_->queue_depth(); }

  Stats stats() const;

  /// Aggregated guard/breaker counters across the per-worker planners.
  core::GuardStats guard_stats() const;

  /// Atomically replaces the serving model under in-flight traffic: builds
  /// fresh per-slot planners and a fresh rendezvous for `model`, quiesces
  /// every planner slot (in-flight requests finish on the model they
  /// started with), and swaps. Requests submitted after SwapModel returns
  /// plan against the new model; the shared_ptr keeps the old model alive
  /// until its last in-flight reader drops it. On error (e.g. planner
  /// construction fails) the old model keeps serving. Designed as the
  /// ModelManager swap hook; safe to call concurrently with Submit.
  Status SwapModel(std::shared_ptr<const core::QpSeeker> model);

  const PlanServiceOptions& options() const { return options_; }

 private:
  PlanService(const core::QpSeeker* model, PlanServiceOptions options);

  struct Request;
  struct PlannerSlot;

  void RunRequest(Request& req);
  StatusOr<core::PlanResult> PlanShedded(const query::Query& q);

  /// Non-owning for the construction-time model; owning after SwapModel.
  std::shared_ptr<const core::QpSeeker> model_;
  PlanServiceOptions options_;

  /// Create() parameters, kept for rebuilding planners in SwapModel.
  std::string planner_name_;
  const optimizer::Planner* baseline_ = nullptr;
  core::GuardedOptions gopts_;

  std::vector<std::unique_ptr<PlannerSlot>> slots_;
  std::atomic<size_t> next_slot_{0};

  /// Dedicated baseline instance for the shed-degrade path (inline on the
  /// submitting thread, so it must not contend for planner slots).
  std::unique_ptr<core::Planner> shed_planner_;
  std::mutex shed_mu_;

  /// Guards model_/rendezvous_/retired_batching_ across hot swaps. Lock
  /// order where both are held: slot mutex first, then model_mu_ (SwapModel
  /// acquires every slot mutex before this one).
  mutable std::mutex model_mu_;
  std::shared_ptr<BatchRendezvous> rendezvous_;
  /// Batching counters accumulated from rendezvous retired by SwapModel.
  BatchRendezvous::Stats retired_batching_;

  std::atomic<int> inflight_{0};
  mutable std::mutex stats_mu_;
  Stats stats_;

  /// Declared last: its destructor drains queued tasks, which still touch
  /// the members above.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_PLAN_SERVICE_H_
