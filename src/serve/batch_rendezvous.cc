// Copyright 2026 The QPSeeker Authors

#include "serve/batch_rendezvous.h"

#include <algorithm>
#include <chrono>

#include "util/fault.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace qps {
namespace serve {

namespace {

struct RendezvousMetrics {
  metrics::Histogram* batch_size;   ///< fused queries per flush
  metrics::Histogram* batch_plans;  ///< candidate plans per flush

  static const RendezvousMetrics& Get() {
    static const RendezvousMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      return RendezvousMetrics{reg.GetHistogram("qps.serve.batch_size"),
                               reg.GetHistogram("qps.serve.batch_plans")};
    }();
    return m;
  }
};

}  // namespace

BatchRendezvous::BatchRendezvous(const core::QpSeeker* model,
                                 BatchRendezvousOptions options)
    : model_(model), options_(options) {}

size_t BatchRendezvous::TargetLocked() const {
  const int expected = expected_.load(std::memory_order_relaxed);
  const int capped = std::min(std::max(expected, 1), std::max(options_.max_batch, 1));
  return static_cast<size_t>(capped);
}

void BatchRendezvous::FlushLocked(std::unique_lock<std::mutex>& lk) {
  flushing_ = true;
  std::vector<Pending*> batch;
  batch.swap(waiting_);
  lk.unlock();

  std::vector<core::PlanEvalRequest> requests;
  requests.reserve(batch.size());
  int64_t total_plans = 0;
  for (Pending* p : batch) {
    requests.push_back(core::PlanEvalRequest{p->query, *p->plans});
    total_plans += static_cast<int64_t>(p->plans->size());
  }
  std::vector<std::vector<query::NodeStats>> fused;
  {
    QPS_TRACE_SPAN_VAR(span, "serve.batch_flush");
    span.AddAttr("queries", static_cast<int64_t>(batch.size()));
    span.AddAttr("plans", total_plans);
    // Latency-only fault point: the fused forward has no Status path (the
    // rendezvous contract is "plans come back"), so chaos specs here stall
    // the whole batch — modelling a slow model, not a broken one. The
    // stall surfaces downstream as deadline pressure on every fused
    // request.
    (void)fault::Check("serve.batch");
    fused = model_->PredictPlansMulti(requests, options_.annotation_pool);
  }
  RendezvousMetrics::Get().batch_size->Record(static_cast<double>(batch.size()));
  RendezvousMetrics::Get().batch_plans->Record(static_cast<double>(total_plans));

  lk.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->result = std::move(fused[i]);
    batch[i]->done = true;
  }
  stats_.flushes += 1;
  stats_.fused_queries += static_cast<int64_t>(batch.size());
  stats_.fused_plans += total_plans;
  stats_.max_fused =
      std::max(stats_.max_fused, static_cast<int64_t>(batch.size()));
  flushing_ = false;
  cv_.notify_all();
}

std::vector<query::NodeStats> BatchRendezvous::Evaluate(
    const query::Query& q, const std::vector<const query::PlanNode*>& plans) {
  Pending pending;
  pending.query = &q;
  pending.plans = &plans;

  std::unique_lock<std::mutex> lk(mu_);
  waiting_.push_back(&pending);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(
          static_cast<int64_t>(options_.flush_timeout_ms * 1e6));
  for (;;) {
    if (pending.done) break;
    // A leader flushes when the parked set reaches the target or its wait
    // timed out — but never while another flush is mid-flight, because the
    // model forward is single-threaded by contract. If we observe
    // !flushing_ and !done, our entry is still parked (a finished flush
    // settles every entry it stole before clearing flushing_), so the
    // flush we start below always includes ourselves.
    const bool expired = std::chrono::steady_clock::now() >= deadline;
    if (!flushing_ && (waiting_.size() >= TargetLocked() || expired)) {
      FlushLocked(lk);
      continue;
    }
    if (expired) {
      cv_.wait(lk);
    } else {
      cv_.wait_until(lk, deadline);
    }
  }
  return std::move(pending.result);
}

BatchRendezvous::Stats BatchRendezvous::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace qps
