// Copyright 2026 The QPSeeker Authors
//
// Tenant metadata for sharded multi-tenant serving. A *tenant* is one
// (database, model, planner backend, config, quota) workload sharing the
// process with others; the registry is the control-plane source of truth
// mapping tenant_id -> TenantSpec, and the shard ring assigns every tenant
// to a shard deterministically (consistent hashing over virtual nodes, so
// the assignment depends only on the tenant id and the shard count — never
// on registration order or process history).
//
// The data plane lives in sharded_service.h: ShardedPlanService consumes
// specs from here and builds one PlanService core per tenant on its
// shard's pool. The registry itself is storage + validation only, so it is
// unit-testable without models or pools.

#ifndef QPS_SERVE_TENANT_H_
#define QPS_SERVE_TENANT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/plan_service.h"

namespace qps {
namespace serve {

/// Per-tenant admission quota. The point of the quota is isolation: a hot
/// tenant exhausts *its* bound and sheds (or degrades), while the shard's
/// pool keeps serving everyone else.
struct TenantQuota {
  /// Max admitted-but-unstarted requests for this tenant (the PlanService
  /// max_queue of its core).
  size_t max_pending = 16;

  /// Shed policy past the quota: false rejects with kResourceExhausted;
  /// true degrades to an inline DP plan on the submitting thread (requires
  /// deps.baseline).
  bool shed_to_baseline = false;
};

/// Everything needed to serve one tenant: identity, planning deps (model,
/// backend, baseline, guard config — see PlanServiceDeps), and quota. The
/// database binding is implicit in the deps: the model, baseline planner,
/// and guard options are all constructed over the tenant's database.
struct TenantSpec {
  std::string tenant_id;
  PlanServiceDeps deps;
  TenantQuota quota;
};

/// Tenant ids become metric-name segments (qps.tenant.requests.<id>) and
/// audit fields, so they are restricted to the metric-name alphabet:
/// non-empty, at most 64 chars, [a-z0-9_] only. kInvalidArgument otherwise.
Status ValidateTenantId(const std::string& id);

/// 64-bit FNV-1a, the stable hash under the shard ring (std::hash is not
/// specified across implementations, and shard assignment must be
/// reproducible across processes and platforms).
uint64_t TenantHash(std::string_view s);

/// Consistent-hash ring over `num_shards` shards, each projected onto
/// `replicas` virtual nodes. ShardFor(tenant) walks to the first ring
/// point at or after the tenant's hash (wrapping), so the same tenant id
/// always lands on the same shard for a given shard count, and changing
/// the shard count only moves the tenants between the affected ring arcs.
class ShardRing {
 public:
  explicit ShardRing(int num_shards, int replicas = 32);

  int ShardFor(std::string_view tenant_id) const;
  int num_shards() const { return num_shards_; }

 private:
  struct Point {
    uint64_t hash;
    int shard;
  };
  int num_shards_;
  std::vector<Point> points_;  ///< sorted by hash
};

/// Thread-safe tenant_id -> TenantSpec table. Add validates the id and
/// rejects duplicates (kAlreadyExists); Remove/Get return kNotFound for
/// unknown ids. Specs are returned by value: the registry can be mutated
/// concurrently without invalidating readers.
class TenantRegistry {
 public:
  Status Add(TenantSpec spec);
  Status Remove(const std::string& tenant_id);
  StatusOr<TenantSpec> Get(const std::string& tenant_id) const;
  bool Contains(const std::string& tenant_id) const;

  /// Repoints the spec's model (after a validated hot swap), so later Get
  /// calls see what is actually serving.
  Status UpdateModel(const std::string& tenant_id,
                     std::shared_ptr<const core::QpSeeker> model);

  std::vector<std::string> ids() const;  ///< sorted
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TenantSpec> tenants_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_TENANT_H_
