// Copyright 2026 The QPSeeker Authors

#include "serve/plan_service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "core/plan_cache.h"
#include "obs/audit.h"
#include "obs/window.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace serve {

namespace {

struct ServeMetrics {
  metrics::Counter* requests;
  metrics::Counter* shed;
  metrics::Counter* deadline_misses;
  metrics::Gauge* inflight;
  metrics::Gauge* queue_depth;
  metrics::Histogram* queue_ms;
  metrics::Histogram* latency_ms;
  /// Sliding-window mirrors of the cumulative series above: request/shed
  /// rates and rolling latency percentiles for the export surface and
  /// qps_top (obs/window.h).
  /// Retry accounting (worker-side and caller-side loops both feed these).
  metrics::Counter* retry_attempts;
  metrics::Counter* retry_exhausted;
  metrics::Counter* retry_success;
  obs::WindowedCounter* requests_window;
  obs::WindowedCounter* shed_window;
  obs::WindowedCounter* retry_attempts_window;
  obs::WindowedHistogram* queue_ms_window;
  obs::WindowedHistogram* latency_ms_window;

  static const ServeMetrics& Get() {
    static const ServeMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      auto& win = obs::WindowRegistry::Global();
      ServeMetrics out;
      out.requests = reg.GetCounter("qps.serve.requests");
      out.shed = reg.GetCounter("qps.serve.shed");
      out.deadline_misses = reg.GetCounter("qps.serve.deadline_misses");
      out.inflight = reg.GetGauge("qps.serve.inflight");
      out.queue_depth = reg.GetGauge("qps.serve.queue_depth");
      out.queue_ms = reg.GetHistogram("qps.serve.queue_ms");
      out.latency_ms = reg.GetHistogram("qps.serve.latency_ms");
      out.retry_attempts = reg.GetCounter("qps.serve.retries.attempts");
      out.retry_exhausted = reg.GetCounter("qps.serve.retries.exhausted");
      out.retry_success =
          reg.GetCounter("qps.serve.retries.success_after_retry");
      out.requests_window = win.GetCounter("qps.serve.requests");
      out.shed_window = win.GetCounter("qps.serve.shed");
      out.retry_attempts_window = win.GetCounter("qps.serve.retries.attempts");
      out.queue_ms_window = win.GetHistogram("qps.serve.queue_ms");
      out.latency_ms_window = win.GetHistogram("qps.serve.latency_ms");
      return out;
    }();
    return m;
  }
};

/// Blocking backoff between retry attempts. Millisecond-scale sleeps on a
/// worker (or submitting) thread; the deadline budget has already been
/// checked by the caller.
void SleepForBackoff(double backoff_ms) {
  if (backoff_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(backoff_ms));
}

/// Merges batching counters from a retired rendezvous into an accumulator.
void AccumulateBatching(BatchRendezvous::Stats* into,
                        const BatchRendezvous::Stats& s) {
  into->flushes += s.flushes;
  into->fused_queries += s.fused_queries;
  into->fused_plans += s.fused_plans;
  into->max_fused = std::max(into->max_fused, s.max_fused);
}

}  // namespace

/// One admitted request: the PlanRequest lives here until a worker picks
/// the task up, and the promise carries the result back.
struct PlanService::Request {
  PlanRequest request;
  std::promise<StatusOr<core::PlanResult>> promise;
  Timer queued;  ///< admission -> task start, for qps.serve.queue_ms
};

/// A planner instance plus the mutex making it exclusive to one request at
/// a time. Backends carry per-request state (guard stats, breaker
/// windows), so instances are per-slot rather than shared; slots rotate
/// round-robin so with <= `workers` concurrent tasks contention is nil.
struct PlanService::PlannerSlot {
  std::mutex mu;
  std::unique_ptr<core::Planner> planner;
};

StatusOr<std::unique_ptr<PlanService>> PlanService::Create(
    PlanServiceDeps deps, PlanServiceOptions options) {
  std::unique_ptr<PlanService> service(
      new PlanService(std::move(deps), std::move(options)));
  const int slots = std::max(1, service->options_.workers);
  for (int i = 0; i < slots; ++i) {
    auto slot = std::make_unique<PlannerSlot>();
    QPS_ASSIGN_OR_RETURN(
        slot->planner,
        core::MakePlanner(service->planner_name_, service->model_.get(),
                          service->baseline_, service->gopts_));
    service->slots_.push_back(std::move(slot));
  }
  if (service->options_.shed_to_baseline) {
    if (service->baseline_ == nullptr) {
      return Status::InvalidArgument(
          "shed_to_baseline requires a baseline planner");
    }
    QPS_ASSIGN_OR_RETURN(
        service->shed_planner_,
        core::MakePlanner("baseline", service->model_.get(),
                          service->baseline_, service->gopts_));
  }
  return service;
}

StatusOr<std::unique_ptr<PlanService>> PlanService::Create(
    const std::string& planner_name, const core::QpSeeker* model,
    const optimizer::Planner* baseline, const core::GuardedOptions& gopts,
    PlanServiceOptions options) {
  PlanServiceDeps deps;
  deps.planner_name = planner_name;
  deps.model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), model);
  deps.baseline = baseline;
  deps.guard_options = gopts;
  return Create(std::move(deps), std::move(options));
}

PlanService::PlanService(PlanServiceDeps deps, PlanServiceOptions options)
    : model_(std::move(deps.model)),
      options_(std::move(options)),
      planner_name_(std::move(deps.planner_name)),
      baseline_(deps.baseline),
      gopts_(deps.guard_options) {
  if (model_ != nullptr) {
    BatchRendezvousOptions ropts;
    ropts.max_batch = options_.max_batch;
    ropts.flush_timeout_ms = options_.flush_timeout_ms;
    rendezvous_ = std::make_shared<BatchRendezvous>(model_.get(), ropts);
  }
  if (!options_.tenant_id.empty()) {
    auto& win = obs::WindowRegistry::Global();
    tenant_requests_ =
        win.GetCounter("qps.tenant.requests." + options_.tenant_id);
    tenant_shed_ = win.GetCounter("qps.tenant.shed." + options_.tenant_id);
    tenant_latency_ =
        win.GetHistogram("qps.tenant.latency_ms." + options_.tenant_id);
  }
  if (options_.pool == nullptr) {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  }
}

PlanService::~PlanService() {
  // On a shared pool the service cannot drain by destroying it; wait out
  // every task that still references this object.
  if (options_.pool != nullptr) Quiesce();
}

void PlanService::TaskStarted() {
  std::lock_guard<std::mutex> lock(outstanding_mu_);
  outstanding_ += 1;
}

void PlanService::TaskFinished() {
  std::lock_guard<std::mutex> lock(outstanding_mu_);
  outstanding_ -= 1;
  if (outstanding_ == 0) outstanding_cv_.notify_all();
}

void PlanService::Quiesce() {
  std::unique_lock<std::mutex> lock(outstanding_mu_);
  outstanding_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

StatusOr<core::PlanResult> PlanService::PlanShedded(const query::Query& q,
                                                    const char* reason) {
  std::lock_guard<std::mutex> lock(shed_mu_);
  auto result = shed_planner_->Plan(q, core::PlanRequestOptions{});
  if (result.ok()) result->fallback_reason = std::string("shed: ") + reason;
  return result;
}

void PlanService::ShedRequest(Request& req, const char* reason) {
  const ServeMetrics& sm = ServeMetrics::Get();
  sm.shed->Increment();
  sm.shed_window->Increment();
  if (tenant_shed_ != nullptr) tenant_shed_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.shed += 1;
    if (shed_planner_ != nullptr) stats_.shed_degraded += 1;
  }
  obs::AuditRecord record;
  record.query_hash = core::QueryFingerprint(req.request.query);
  record.backend = planner_name_;
  record.tenant = req.request.tenant_id.empty() ? options_.tenant_id
                                                : req.request.tenant_id;
  record.reason = reason;
  if (shed_planner_ != nullptr) {
    StatusOr<core::PlanResult> degraded =
        PlanShedded(req.request.query, reason);
    if (options_.audit != nullptr) {
      record.outcome = "shed_degraded";
      if (degraded.ok()) {
        record.stage = core::PlanStageName(degraded->stage);
        record.plan_ms = degraded->plan_ms;
        record.plans_evaluated = degraded->plans_evaluated;
        record.fallback_reason = degraded->fallback_reason;
      }
      options_.audit->Append(record);
    }
    req.promise.set_value(std::move(degraded));
  } else {
    if (options_.audit != nullptr) {
      record.outcome = "shed";
      options_.audit->Append(record);
    }
    // Quarantine rejections are kUnavailable (retryable once the breaker
    // half-opens); load sheds stay kResourceExhausted. Either way the
    // machine-readable cause rides Status::reason(), not the message.
    Status rejected =
        std::strcmp(reason, "quarantined") == 0
            ? Status::Unavailable("tenant quarantined by health monitor")
            : Status::ResourceExhausted("plan service admission queue full");
    req.promise.set_value(std::move(rejected).SetReason(reason));
  }
}

std::future<StatusOr<core::PlanResult>> PlanService::SubmitDegraded(
    PlanRequest request, const char* reason) {
  const ServeMetrics& sm = ServeMetrics::Get();
  sm.requests->Increment();
  sm.requests_window->Increment();
  if (tenant_requests_ != nullptr) tenant_requests_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.submitted += 1;
  }
  auto req = std::make_shared<Request>();
  req->request = std::move(request);
  auto future = req->promise.get_future();
  ShedRequest(*req, reason);
  return future;
}

std::future<StatusOr<core::PlanResult>> PlanService::Submit(
    PlanRequest request) {
  const ServeMetrics& sm = ServeMetrics::Get();
  QPS_TRACE_SPAN("serve.submit");
  sm.requests->Increment();
  sm.requests_window->Increment();
  if (tenant_requests_ != nullptr) tenant_requests_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.submitted += 1;
  }

  auto req = std::make_shared<Request>();
  req->request = std::move(request);
  auto future = req->promise.get_future();

  // Chaos hook on the submitting thread, before admission: an armed
  // serve.submit spec fails the request synchronously (the future is ready
  // on return), which is exactly the shape the caller-side retry loop in
  // ShardedPlanService handles. Scoped to the tenant so only_context specs
  // can target one tenant's submissions.
  {
    fault::ScopedContext fault_ctx(req->request.tenant_id.empty()
                                       ? options_.tenant_id
                                       : req->request.tenant_id);
    Status injected = fault::Check("serve.submit");
    if (!injected.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.errors += 1;
      }
      req->promise.set_value(std::move(injected));
      return future;
    }
  }

  // Admission: bound admitted-but-unstarted requests at max_queue. A pool
  // with no workers runs everything inline on the caller and never sheds
  // (matching ThreadPool's never-drop inline semantics).
  const bool inline_pool = active_pool().num_threads() == 0;
  const int64_t prior = pending_.fetch_add(1, std::memory_order_relaxed);
  if (!inline_pool && prior >= static_cast<int64_t>(options_.max_queue)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    ShedRequest(*req, "shed_queue_full");
    return future;
  }

  TaskStarted();
  auto task = [this, req] {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    RunRequest(*req);
    TaskFinished();
  };
  bool admitted = true;
  if (options_.pool != nullptr && options_.pool_max_queue > 0) {
    admitted = active_pool().TrySchedule(std::move(task),
                                         options_.pool_max_queue);
  } else {
    active_pool().Schedule(std::move(task));
  }
  sm.queue_depth->Set(static_cast<double>(queue_depth()));
  if (!admitted) {
    // Shard-pool backstop tripped: the tenant was under its own quota but
    // the shared pool is drowning in aggregate traffic.
    pending_.fetch_sub(1, std::memory_order_relaxed);
    TaskFinished();
    ShedRequest(*req, "shed_pool_backstop");
  }
  return future;
}

void PlanService::RunRequest(Request& req) {
  const ServeMetrics& sm = ServeMetrics::Get();
  const double queue_ms = req.queued.ElapsedMillis();
  sm.queue_ms->Record(queue_ms);
  sm.queue_ms_window->Record(queue_ms);
  const int inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  sm.inflight->Set(static_cast<double>(inflight));
  sm.queue_depth->Set(static_cast<double>(queue_depth()));
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    if (rendezvous_ != nullptr) rendezvous_->SetExpected(inflight);
  }

  QPS_TRACE_SPAN_VAR(span, "serve.plan");
  Timer timer;
  core::PlanRequestOptions ropts;
  ropts.deadline_ms = req.request.deadline_ms > 0.0
                          ? req.request.deadline_ms
                          : options_.default_deadline_ms;
  ropts.fail_on_deadline = req.request.fail_on_deadline;
  ropts.seed = req.request.seed;
  ropts.tenant_id = req.request.tenant_id.empty() ? options_.tenant_id
                                                  : req.request.tenant_id;

  // Cancellation: the caller's token when supplied; otherwise, for
  // fail_on_deadline requests, a service-armed one so a blown deadline
  // aborts the search cooperatively instead of running out the budget.
  // Best-effort requests keep their anytime semantics (no token).
  std::shared_ptr<util::CancelToken> deadline_token;
  const util::CancelToken* cancel = req.request.cancel.get();
  if (cancel == nullptr && req.request.fail_on_deadline &&
      ropts.deadline_ms > 0.0) {
    deadline_token = std::make_shared<util::CancelToken>();
    deadline_token->ArmDeadline(ropts.deadline_ms);
    cancel = deadline_token.get();
  }
  ropts.cancel = cancel;

  auto plan_once = [&]() -> StatusOr<core::PlanResult> {
    // Planning runs under the tenant's fault context, so chaos specs with
    // only_context follow this request onto whichever worker runs it.
    fault::ScopedContext fault_ctx(ropts.tenant_id);
    const size_t idx =
        next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
    std::lock_guard<std::mutex> lock(slots_[idx]->mu);
    // Snapshot the rendezvous while holding the slot: SwapModel replaces
    // planner and rendezvous together under every slot mutex, so this pair
    // is consistent, and the shared_ptr capture keeps the rendezvous (and
    // through the service's model_ handoff, the model) alive for the whole
    // Plan call even if a swap lands right after it.
    std::shared_ptr<BatchRendezvous> rdv;
    {
      std::lock_guard<std::mutex> mlock(model_mu_);
      rdv = rendezvous_;
    }
    if (rdv != nullptr) {
      ropts.evaluate = [rdv](const query::Query& q,
                             const std::vector<const query::PlanNode*>& plans) {
        return rdv->Evaluate(q, plans);
      };
    }
    return slots_[idx]->planner->Plan(req.request.query, ropts);
  };

  // Worker-side retry: transient planning failures re-plan here, each
  // attempt budgeted against the request deadline. Backoff jitter is a
  // pure function of (seed, attempt), so a fixed seed replays the same
  // schedule — and the same plan — regardless of scheduling.
  const RetryPolicy& retry = options_.retry;
  int retries_taken = 0;
  StatusOr<core::PlanResult> result = plan_once();
  while (!result.ok()) {
    const Status& failure = result.status();
    const bool cancelled = util::Cancelled(cancel);
    const int attempt = retries_taken + 1;
    if (cancelled || !retry.ShouldRetry(failure, attempt)) break;
    const double backoff_ms = retry.BackoffMs(attempt, req.request.seed);
    if (!RetryPolicy::FitsBudget(backoff_ms, timer.ElapsedMillis(),
                                 ropts.deadline_ms)) {
      sm.retry_exhausted->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.retry_exhausted += 1;
      }
      break;
    }
    if (options_.on_attempt) {
      options_.on_attempt(req.request, failure, /*final_attempt=*/false);
    }
    sm.retry_attempts->Increment();
    sm.retry_attempts_window->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.retry_attempts += 1;
    }
    SleepForBackoff(backoff_ms);
    retries_taken += 1;
    result = plan_once();
  }
  if (!result.ok() && retries_taken >= retry.max_retries && retry.enabled() &&
      result.status().IsRetryable() && !util::Cancelled(cancel)) {
    // Ran out of attempts (as opposed to budget or a terminal failure).
    sm.retry_exhausted->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.retry_exhausted += 1;
    }
  }
  if (result.ok() && retries_taken > 0) {
    sm.retry_success->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.retry_successes += 1;
    }
  }
  if (options_.on_attempt) {
    options_.on_attempt(req.request, result.status(), /*final_attempt=*/true);
  }

  const double latency_ms = timer.ElapsedMillis();
  sm.latency_ms->Record(latency_ms);
  sm.latency_ms_window->Record(latency_ms);
  if (tenant_latency_ != nullptr) tenant_latency_->Record(latency_ms);
  span.AddAttr("ok", result.ok() ? 1 : 0);
  if (options_.audit != nullptr) {
    obs::AuditRecord record;
    record.query_hash = core::QueryFingerprint(req.request.query);
    record.backend = planner_name_;
    record.tenant = req.request.tenant_id.empty() ? options_.tenant_id
                                                  : req.request.tenant_id;
    record.outcome = result.ok() ? "ok" : "error";
    record.queue_ms = queue_ms;
    record.plan_ms = latency_ms;
    if (result.ok()) {
      record.stage = core::PlanStageName(result->stage);
      record.deadline_hit = result->deadline_hit;
      record.plans_evaluated = result->plans_evaluated;
      record.fallback_reason = result->fallback_reason;
    } else {
      record.fallback_reason = result.status().ToString();
      record.reason = result.status().reason();
    }
    options_.audit->Append(record);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (result.ok()) {
      stats_.completed += 1;
      if (result->deadline_hit) {
        stats_.deadline_hits += 1;
        sm.deadline_misses->Increment();
      }
    } else {
      stats_.errors += 1;
      if (result.status().IsDeadlineExceeded()) {
        sm.deadline_misses->Increment();
      }
    }
  }

  const int remaining = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  sm.inflight->Set(static_cast<double>(remaining));
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    if (rendezvous_ != nullptr) rendezvous_->SetExpected(std::max(remaining, 1));
  }
  req.promise.set_value(std::move(result));
}

PlanService::Stats PlanService::stats() const {
  // Both locks at once (std::scoped_lock's deadlock-avoiding acquisition):
  // the counter snapshot and the batching merge see the same instant, so a
  // SwapModel retiring a rendezvous between the two reads cannot tear the
  // view.
  std::scoped_lock lock(stats_mu_, model_mu_);
  Stats out = stats_;
  out.batching = retired_batching_;
  if (rendezvous_ != nullptr) {
    AccumulateBatching(&out.batching, rendezvous_->stats());
  }
  return out;
}

Status PlanService::SwapModel(std::shared_ptr<const core::QpSeeker> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("SwapModel requires a model");
  }
  // Build everything fallible before touching live state: a construction
  // failure leaves the old model serving untouched.
  std::vector<std::unique_ptr<core::Planner>> fresh;
  fresh.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    QPS_ASSIGN_OR_RETURN(
        auto planner,
        core::MakePlanner(planner_name_, model.get(), baseline_, gopts_));
    fresh.push_back(std::move(planner));
  }
  BatchRendezvousOptions ropts;
  ropts.max_batch = options_.max_batch;
  ropts.flush_timeout_ms = options_.flush_timeout_ms;
  auto rendezvous = std::make_shared<BatchRendezvous>(model.get(), ropts);

  // Quiesce: acquire every slot in index order. Each acquisition waits out
  // the request currently planning there; requests parked in a rendezvous
  // flush drain via its timeout, so this converges. New requests that grab
  // a slot after us see the new planner + rendezvous pair.
  std::vector<std::unique_lock<std::mutex>> slot_locks;
  slot_locks.reserve(slots_.size());
  for (auto& slot : slots_) slot_locks.emplace_back(slot->mu);

  std::lock_guard<std::mutex> lock(model_mu_);
  if (rendezvous_ != nullptr) {
    AccumulateBatching(&retired_batching_, rendezvous_->stats());
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i]->planner = std::move(fresh[i]);
  }
  rendezvous_ = std::move(rendezvous);
  model_ = std::move(model);
  return Status::OK();
}

core::GuardStats PlanService::guard_stats() const {
  core::GuardStats total;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    total += slot->planner->guard_stats();
  }
  return total;
}

}  // namespace serve
}  // namespace qps
