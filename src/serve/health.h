// Copyright 2026 The QPSeeker Authors
//
// Serving-path health monitoring: per-key (tenant or shard) rolling
// error/timeout rates driving a closed -> open -> half-open circuit
// breaker. This is the serving-layer analogue of core::GuardedPlanner's
// per-planner breaker — that one guards a model's rungs inside a request;
// this one quarantines a whole tenant whose requests keep failing, so
// doomed work fast-fails (kUnavailable, reason "quarantined") instead of
// queueing on the shard pool that colocated tenants are paying for.
//
// State machine per key:
//
//           error rate >= open_error_rate
//           over >= min_samples in window
//   CLOSED ────────────────────────────────▶ OPEN   (quarantined: Admit()
//      ▲                                      │       fast-fails kReject)
//      │  probe_recoveries successful         │ open_ms cool-down elapsed
//      │  probes in a row                     ▼
//      └──────────────────────────────── HALF-OPEN  (Admit() lets at most
//                 ▲      │                            probe_concurrency
//                 │      │ any probe failure          live requests through
//                 └──────┘ re-opens (re-quarantine)   as kProbe)
//
// Time comes from an injectable util/clock Clock, so the whole machine is
// ManualClock-testable. All decisions are made under one mutex per
// monitor; the serving hot path calls Admit()/Record() once per request
// attempt, which is noise against planning cost (health is not consulted
// when no monitor is configured).
//
// Metrics (closed families, linted by scripts/check_metric_names.sh):
//   qps.health.state.<key>        cumulative gauge: 0 closed, 1 open,
//                                 2 half-open
//   qps.health.quarantines.<key>  windowed counter: closed/half-open -> open
//   qps.health.probes.<key>       windowed counter: half-open admissions
//   qps.health.recoveries.<key>   windowed counter: half-open -> closed

#ifndef QPS_SERVE_HEALTH_H_
#define QPS_SERVE_HEALTH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace qps {
namespace serve {

struct HealthOptions {
  /// Rolling window over which error rates are computed.
  double window_ms = 3000.0;

  /// Minimum attempts inside the window before the breaker may trip (a
  /// single early failure is not a pattern).
  int min_samples = 8;

  /// Error-rate trip threshold over the window (errors / attempts).
  double open_error_rate = 0.5;

  /// Quarantine duration before the breaker half-opens and lets probe
  /// traffic through.
  double open_ms = 1500.0;

  /// Live probe requests admitted concurrently while half-open.
  int probe_concurrency = 2;

  /// Consecutive successful probes required to close (recover).
  int probe_recoveries = 3;

  /// Count kDeadlineExceeded attempts as failures (timeouts are a health
  /// signal: a stalling model is as quarantinable as a throwing one).
  bool timeouts_are_failures = true;

  /// Injectable time source; nullptr = Clock::Default().
  const Clock* clock = nullptr;
};

enum class HealthState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* HealthStateName(HealthState state);

/// Admission decision for one request attempt against one key.
enum class AdmitDecision {
  kAdmit,  ///< closed: normal traffic
  kProbe,  ///< half-open: admitted as a recovery probe
  kReject, ///< open (or half-open at probe capacity): fast-fail
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = {});
  ~HealthMonitor();  // out-of-line: keys_ holds the incomplete Key type

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Gate one request attempt for `key`. kReject means the caller should
  /// fast-fail kUnavailable (reason "quarantined") without queueing work.
  /// A kProbe admission MUST be matched by exactly one Record() with
  /// probe=true, or the probe slot leaks until the next quarantine.
  AdmitDecision Admit(const std::string& key);

  /// Records the outcome of one admitted attempt. `probe` echoes the
  /// Admit() decision. Failures while half-open re-open the breaker
  /// immediately (re-quarantine); probe_recoveries consecutive probe
  /// successes close it.
  void Record(const std::string& key, const Status& outcome, bool probe);

  /// Convenience for shadow keys (e.g. per-shard rates published alongside
  /// the per-tenant breaker): records without any breaker transitions.
  void RecordObserved(const std::string& key, const Status& outcome);

  /// Releases a kProbe admission whose outcome says nothing about health —
  /// the request was shed or cancelled before planning. Decrements the
  /// in-flight probe count without recording a sample or transition.
  void AbandonProbe(const std::string& key);

  HealthState state(const std::string& key) const;

  struct KeyStats {
    HealthState state = HealthState::kClosed;
    int64_t window_attempts = 0;  ///< attempts inside the rolling window
    int64_t window_failures = 0;
    int64_t quarantines = 0;      ///< lifetime -> open transitions
    int64_t probes = 0;           ///< lifetime probe admissions
    int64_t recoveries = 0;       ///< lifetime half-open -> closed
  };
  KeyStats stats(const std::string& key) const;
  std::vector<std::pair<std::string, KeyStats>> AllStats() const;

  const HealthOptions& options() const { return options_; }

 private:
  struct Key;

  const Clock& clock() const {
    return options_.clock != nullptr ? *options_.clock : *Clock::Default();
  }

  Key& GetKeyLocked(const std::string& key);
  void TrimLocked(Key& k, double now_ms) const;
  void OpenLocked(const std::string& name, Key& k, double now_ms);

  HealthOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Key> keys_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_HEALTH_H_
