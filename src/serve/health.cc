// Copyright 2026 The QPSeeker Authors

#include "serve/health.h"

#include <algorithm>
#include <utility>

#include "obs/window.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace qps {
namespace serve {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kClosed:
      return "closed";
    case HealthState::kOpen:
      return "open";
    case HealthState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

/// Per-key breaker state. Samples are (timestamp_ms, failure) pairs in a
/// deque trimmed to the rolling window; serving rates (tens of thousands
/// per window at most) keep it small, and everything is under the monitor
/// mutex.
struct HealthMonitor::Key {
  HealthState state = HealthState::kClosed;
  std::deque<std::pair<double, bool>> samples;
  int64_t window_failures = 0;  ///< failures currently inside `samples`
  double opened_at_ms = 0.0;
  int probes_inflight = 0;
  int probe_successes = 0;  ///< consecutive, while half-open

  // Lifetime counters (KeyStats).
  int64_t quarantines = 0;
  int64_t probes = 0;
  int64_t recoveries = 0;

  // Resolved once per key; the state gauge is cumulative (dashboards want
  // the current value), transitions feed windowed rate series.
  metrics::Gauge* state_gauge = nullptr;
  obs::WindowedCounter* quarantines_window = nullptr;
  obs::WindowedCounter* probes_window = nullptr;
  obs::WindowedCounter* recoveries_window = nullptr;
};

HealthMonitor::HealthMonitor(HealthOptions options)
    : options_(std::move(options)) {}

HealthMonitor::~HealthMonitor() = default;

HealthMonitor::Key& HealthMonitor::GetKeyLocked(const std::string& key) {
  auto it = keys_.find(key);
  if (it == keys_.end()) {
    it = keys_.emplace(key, Key{}).first;
    Key& k = it->second;
    k.state_gauge =
        metrics::Registry::Global().GetGauge("qps.health.state." + key);
    auto& win = obs::WindowRegistry::Global();
    k.quarantines_window = win.GetCounter("qps.health.quarantines." + key);
    k.probes_window = win.GetCounter("qps.health.probes." + key);
    k.recoveries_window = win.GetCounter("qps.health.recoveries." + key);
  }
  return it->second;
}

void HealthMonitor::TrimLocked(Key& k, double now_ms) const {
  const double horizon = now_ms - options_.window_ms;
  while (!k.samples.empty() && k.samples.front().first < horizon) {
    if (k.samples.front().second) k.window_failures -= 1;
    k.samples.pop_front();
  }
}

void HealthMonitor::OpenLocked(const std::string& name, Key& k,
                               double now_ms) {
  k.state = HealthState::kOpen;
  k.opened_at_ms = now_ms;
  k.quarantines += 1;
  k.probes_inflight = 0;
  k.probe_successes = 0;
  // A fresh quarantine judges the next window on its own evidence.
  k.samples.clear();
  k.window_failures = 0;
  k.state_gauge->Set(static_cast<double>(HealthState::kOpen));
  k.quarantines_window->Increment();
  QPS_VLOG(1) << "health: " << name << " quarantined (breaker OPEN)";
}

AdmitDecision HealthMonitor::Admit(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Key& k = GetKeyLocked(key);
  const double now_ms = clock().NowMillis();
  switch (k.state) {
    case HealthState::kClosed:
      return AdmitDecision::kAdmit;
    case HealthState::kOpen:
      if (now_ms - k.opened_at_ms < options_.open_ms) {
        return AdmitDecision::kReject;
      }
      // Cool-down over: half-open, and this request is the first probe.
      k.state = HealthState::kHalfOpen;
      k.probe_successes = 0;
      k.probes_inflight = 0;
      k.state_gauge->Set(static_cast<double>(HealthState::kHalfOpen));
      QPS_VLOG(1) << "health: " << key << " half-open, probing";
      [[fallthrough]];
    case HealthState::kHalfOpen:
      if (k.probes_inflight >= options_.probe_concurrency) {
        return AdmitDecision::kReject;
      }
      k.probes_inflight += 1;
      k.probes += 1;
      k.probes_window->Increment();
      return AdmitDecision::kProbe;
  }
  return AdmitDecision::kAdmit;
}

void HealthMonitor::Record(const std::string& key, const Status& outcome,
                           bool probe) {
  std::lock_guard<std::mutex> lock(mu_);
  Key& k = GetKeyLocked(key);
  const double now_ms = clock().NowMillis();
  const bool failure =
      !outcome.ok() && (options_.timeouts_are_failures ||
                        !outcome.IsDeadlineExceeded());
  TrimLocked(k, now_ms);
  k.samples.emplace_back(now_ms, failure);
  if (failure) k.window_failures += 1;

  if (probe && k.state == HealthState::kHalfOpen) {
    k.probes_inflight = std::max(0, k.probes_inflight - 1);
    if (failure) {
      // The tenant is still sick: re-quarantine for a fresh cool-down.
      OpenLocked(key, k, now_ms);
      return;
    }
    k.probe_successes += 1;
    if (k.probe_successes >= options_.probe_recoveries) {
      k.state = HealthState::kClosed;
      k.recoveries += 1;
      k.samples.clear();
      k.window_failures = 0;
      k.state_gauge->Set(static_cast<double>(HealthState::kClosed));
      k.recoveries_window->Increment();
      QPS_VLOG(1) << "health: " << key << " recovered (breaker closed)";
    }
    return;
  }

  if (k.state == HealthState::kClosed && failure) {
    const int64_t attempts = static_cast<int64_t>(k.samples.size());
    if (attempts >= options_.min_samples &&
        static_cast<double>(k.window_failures) >=
            options_.open_error_rate * static_cast<double>(attempts)) {
      OpenLocked(key, k, now_ms);
    }
  }
}

void HealthMonitor::RecordObserved(const std::string& key,
                                   const Status& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  Key& k = GetKeyLocked(key);
  const double now_ms = clock().NowMillis();
  const bool failure =
      !outcome.ok() && (options_.timeouts_are_failures ||
                        !outcome.IsDeadlineExceeded());
  TrimLocked(k, now_ms);
  k.samples.emplace_back(now_ms, failure);
  if (failure) k.window_failures += 1;
}

void HealthMonitor::AbandonProbe(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return;
  Key& k = it->second;
  if (k.state == HealthState::kHalfOpen) {
    k.probes_inflight = std::max(0, k.probes_inflight - 1);
  }
}

HealthState HealthMonitor::state(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  return it == keys_.end() ? HealthState::kClosed : it->second.state;
}

HealthMonitor::KeyStats HealthMonitor::stats(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return KeyStats{};
  const Key& k = it->second;
  KeyStats out;
  out.state = k.state;
  out.window_attempts = static_cast<int64_t>(k.samples.size());
  out.window_failures = k.window_failures;
  out.quarantines = k.quarantines;
  out.probes = k.probes;
  out.recoveries = k.recoveries;
  return out;
}

std::vector<std::pair<std::string, HealthMonitor::KeyStats>>
HealthMonitor::AllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, KeyStats>> out;
  out.reserve(keys_.size());
  for (const auto& [name, k] : keys_) {
    KeyStats s;
    s.state = k.state;
    s.window_attempts = static_cast<int64_t>(k.samples.size());
    s.window_failures = k.window_failures;
    s.quarantines = k.quarantines;
    s.probes = k.probes;
    s.recoveries = k.recoveries;
    out.emplace_back(name, s);
  }
  return out;
}

}  // namespace serve
}  // namespace qps
