// Copyright 2026 The QPSeeker Authors
//
// Cross-query micro-batching for the plan service. Planning a query with
// MCTS issues a stream of candidate-batch evaluations; with N queries in
// flight those streams interleave, and each evaluation alone under-fills
// the model's batched GEMM path. The rendezvous is the meeting point: a
// request thread calls Evaluate() mid-planning, parks, and a *leader* —
// the thread whose arrival fills the batch, or whose flush timeout expires
// first — fuses every parked request into one QpSeeker::PredictPlansMulti
// call and distributes the per-request results.
//
// Two contracts the serving layer depends on:
//
//  1. Serialization. The model forward mutates scratch state (attention
//     score caches), so it is not concurrently callable. Exactly one
//     flush runs at a time; every model evaluation in the service goes
//     through Evaluate(), so the rendezvous *is* the model's concurrency
//     guard.
//  2. Determinism. PredictPlansMulti evaluates each fused request exactly
//     as PredictPlansBatch would (per-request encoding, dedup, caching;
//     row-independent dense kernels), so the NodeStats a request receives
//     are bit-identical no matter which other queries it shared a flush
//     with — including sharing with none. Plans produced under load are
//     therefore bit-identical to serial planning.

#ifndef QPS_SERVE_BATCH_RENDEZVOUS_H_
#define QPS_SERVE_BATCH_RENDEZVOUS_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "core/qpseeker.h"

namespace qps {
namespace serve {

struct BatchRendezvousOptions {
  /// Flush as soon as this many requests are parked (hard cap per flush).
  int max_batch = 16;

  /// How long an arriving request waits for companions before flushing
  /// anyway. The *effective* target is min(expected in-flight queries,
  /// max_batch): a lone request never waits at all, so single-client
  /// latency pays nothing for the batching machinery.
  double flush_timeout_ms = 0.5;

  /// Optional pool for per-plan annotation inside the fused evaluation.
  /// Must NOT be the pool running the planning tasks themselves: those
  /// workers are parked in Evaluate() during a flush and a ParallelFor
  /// waiting on them would deadlock. Null = annotate serially.
  util::ThreadPool* annotation_pool = nullptr;
};

class BatchRendezvous {
 public:
  struct Stats {
    int64_t flushes = 0;
    int64_t fused_queries = 0;  ///< sum of batch sizes (queries per flush)
    int64_t fused_plans = 0;    ///< candidate plans across all flushes
    int64_t max_fused = 0;      ///< largest single flush, in queries
    double MeanBatch() const {
      return flushes > 0 ? static_cast<double>(fused_queries) /
                               static_cast<double>(flushes)
                         : 0.0;
    }
  };

  BatchRendezvous(const core::QpSeeker* model, BatchRendezvousOptions options);

  /// Evaluates `plans` for `q`, fused with whatever other requests are in
  /// flight. Blocks until the result is available. Safe to call from many
  /// threads; results match QpSeeker::PredictPlansBatch bit for bit.
  std::vector<query::NodeStats> Evaluate(
      const query::Query& q, const std::vector<const query::PlanNode*>& plans);

  /// Concurrency hint: how many planning requests are currently in flight.
  /// The flush target is min(expected, max_batch), clamped to >= 1.
  void SetExpected(int n) { expected_.store(n, std::memory_order_relaxed); }

  Stats stats() const;

 private:
  struct Pending {
    const query::Query* query = nullptr;
    const std::vector<const query::PlanNode*>* plans = nullptr;
    std::vector<query::NodeStats> result;
    bool done = false;
  };

  /// Steals the parked set and evaluates it. Called with `lk` held; drops
  /// the lock around the model call and reacquires it to settle results.
  void FlushLocked(std::unique_lock<std::mutex>& lk);

  size_t TargetLocked() const;

  const core::QpSeeker* model_;
  const BatchRendezvousOptions options_;
  std::atomic<int> expected_{1};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending*> waiting_;
  bool flushing_ = false;
  Stats stats_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_BATCH_RENDEZVOUS_H_
