// Copyright 2026 The QPSeeker Authors

#include "serve/model_manager.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace qps {
namespace serve {

namespace {

struct ReloadMetrics {
  metrics::Counter* reloads;
  metrics::Counter* reload_failures;
  /// Quant-gate outcomes: a quantized candidate that passed / failed the
  /// canary q-error gate, plus the last measured candidate/baseline ratio.
  metrics::Counter* quant_gate_pass;
  metrics::Counter* quant_gate_fail;
  metrics::Gauge* quant_gate_ratio;

  static const ReloadMetrics& Get() {
    static const ReloadMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      ReloadMetrics out;
      out.reloads = reg.GetCounter("qps.model.reloads");
      out.reload_failures = reg.GetCounter("qps.model.reload_failures");
      out.quant_gate_pass = reg.GetCounter("qps.model.quant_gate.pass");
      out.quant_gate_fail = reg.GetCounter("qps.model.quant_gate.fail");
      out.quant_gate_ratio = reg.GetGauge("qps.model.quant_gate.ratio");
      return out;
    }();
    return m;
  }
};

/// max(p/a, a/p) with both sides clamped away from zero — the standard
/// cardinality-estimation accuracy measure, applied to all three targets.
double QError(double predicted, double actual) {
  const double p = std::max(std::abs(predicted), 1e-6);
  const double a = std::max(std::abs(actual), 1e-6);
  return std::max(p / a, a / p);
}

}  // namespace

ModelManager::ModelManager(std::shared_ptr<core::QpSeeker> initial,
                           ModelFactory factory, ModelManagerOptions options)
    : factory_(std::move(factory)),
      options_(options),
      live_(std::move(initial)) {}

std::shared_ptr<const core::QpSeeker> ModelManager::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

StatusOr<double> ModelManager::CanaryQError(const core::QpSeeker& model) const {
  // Callers hand us a quiescent model (a private candidate, or the live
  // model before serving starts), so running the forward here is safe. The
  // snapshot shared_ptr keeps the cases alive past the lock even if a
  // concurrent SetCanaries replaces the set mid-probe.
  std::shared_ptr<const std::vector<CanaryCase>> cases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cases = canaries_;
  }
  if (cases == nullptr || cases->empty()) return 1.0;

  double total = 0.0;
  for (size_t i = 0; i < cases->size(); ++i) {
    const CanaryCase& c = (*cases)[i];
    const query::NodeStats pred = model.PredictPlan(c.query, *c.plan);
    if (!query::StatsAreFinite(pred)) {
      return Status::Internal("canary #" + std::to_string(i) +
                              ": non-finite prediction");
    }
    const query::NodeStats& truth = c.plan->actual;
    total += (QError(pred.cardinality, truth.cardinality) +
              QError(pred.cost, truth.cost) +
              QError(pred.runtime_ms, truth.runtime_ms)) /
             3.0;
  }
  return total / static_cast<double>(cases->size());
}

Status ModelManager::SetCanaries(std::vector<CanaryCase> canaries) {
  for (size_t i = 0; i < canaries.size(); ++i) {
    if (canaries[i].plan == nullptr) {
      return Status::InvalidArgument("canary #" + std::to_string(i) +
                                     " has no plan");
    }
  }
  auto shared =
      std::make_shared<const std::vector<CanaryCase>>(std::move(canaries));
  std::shared_ptr<core::QpSeeker> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    canaries_ = std::move(shared);
    live = live_;
  }
  if (live == nullptr) return Status::OK();
  QPS_ASSIGN_OR_RETURN(const double baseline, CanaryQError(*live));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.live_qerror = baseline;
  return Status::OK();
}

void ModelManager::SetSwapHook(
    std::function<Status(std::shared_ptr<const core::QpSeeker>)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  swap_hook_ = std::move(hook);
}

Status ModelManager::Reload(const std::string& path) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  const ReloadMetrics& rm = ReloadMetrics::Get();

  auto fail = [&rm, this](Status st) {
    rm.reload_failures->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.reload_failures += 1;
    }
    QPS_LOG(Warning) << "model reload rejected: " << st.message();
    return st;
  };

  // Stage 1: build the candidate off the query path. The hardened loader
  // rejects corrupt/truncated checkpoints here.
  auto candidate_or = factory_(path);
  if (!candidate_or.ok()) return fail(candidate_or.status());
  std::shared_ptr<core::QpSeeker> candidate = std::move(*candidate_or);
  if (candidate == nullptr) {
    return fail(Status::Internal("model factory returned null"));
  }

  // A quantized candidate goes through the same q-error gate, but its
  // outcome is additionally published as the quant gate: the probe below
  // measures the int8 inference path against the live (typically f32)
  // baseline, so a quantization that drifts plan quality rolls back here.
  const bool candidate_quantized = candidate->quantized();

  // Stage 2: validation probe. The candidate is private to this thread, so
  // its (non-reentrant) forward pass is safe to run directly.
  auto qerror_or = CanaryQError(*candidate);
  if (!qerror_or.ok()) {
    if (candidate_quantized) rm.quant_gate_fail->Increment();
    return fail(qerror_or.status());
  }
  const double candidate_qerror = *qerror_or;

  double baseline;
  std::function<Status(std::shared_ptr<const core::QpSeeker>)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.last_candidate_qerror = candidate_qerror;
    stats_.last_candidate_quantized = candidate_quantized;
    baseline = std::max(stats_.live_qerror, options_.min_live_qerror);
    hook = swap_hook_;
  }
  if (candidate_quantized) {
    rm.quant_gate_ratio->Set(candidate_qerror / baseline);
  }
  const double bound = options_.max_qerror_ratio * baseline;
  if (candidate_qerror > bound) {
    if (candidate_quantized) rm.quant_gate_fail->Increment();
    return fail(Status::Aborted(
        "candidate canary q-error " + std::to_string(candidate_qerror) +
        " exceeds gate " + std::to_string(bound) + " (live baseline " +
        std::to_string(baseline) + ")"));
  }
  if (candidate_quantized) rm.quant_gate_pass->Increment();

  // Stage 3: atomic swap. The hook quiesces in-flight requests; a hook
  // failure means the previous model is still serving (nothing swapped).
  if (hook) {
    if (Status st = hook(candidate); !st.ok()) return fail(st);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    live_ = std::move(candidate);
    stats_.live_qerror = candidate_qerror;
    stats_.reloads += 1;
  }
  rm.reloads->Increment();
  QPS_LOG(Info) << "model reloaded from " << path << " (canary q-error "
                << candidate_qerror
                << (candidate_quantized ? ", int8 inference)" : ")");
  return Status::OK();
}

ModelManager::Stats ModelManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace qps
