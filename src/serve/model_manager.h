// Copyright 2026 The QPSeeker Authors
//
// Validated hot reload of the serving model. A reload never touches the
// query path until the candidate has earned it:
//
//   Reload(path)
//     -> load: the factory builds a *candidate* QpSeeker off to the side
//        and restores the checkpoint through the hardened loader — a
//        corrupt or truncated file fails here, live model untouched.
//     -> probe: the candidate predicts every canary case (a small labeled
//        workload registered up front). Any non-finite prediction, or a
//        mean q-error worse than `max_qerror_ratio` times the live model's
//        own canary q-error, fails the gate.
//     -> swap: the swap hook (PlanService::SwapModel) quiesces in-flight
//        requests and atomically replaces the serving model; the manager's
//        shared_ptr handoff keeps the old model alive for any reader that
//        grabbed it just before the swap.
//     -> rollback: any failure leaves the previous model serving and bumps
//        qps.model.reload_failures; successes bump qps.model.reloads.
//
// Thread-safety: live() may be called from any thread; Reload calls are
// serialized against each other and run entirely off the query path (the
// candidate is private to the reloading thread until the swap).

#ifndef QPS_SERVE_MODEL_MANAGER_H_
#define QPS_SERVE_MODEL_MANAGER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/qpseeker.h"

namespace qps {
namespace serve {

/// One labeled probe case: a query, a plan for it, and ground-truth stats
/// in `plan->actual` to compute q-error against.
struct CanaryCase {
  query::Query query;
  query::PlanPtr plan;
};

/// Builds a fresh model instance and loads the checkpoint at `path` into
/// it. Returning an error fails the reload cleanly.
using ModelFactory =
    std::function<StatusOr<std::shared_ptr<core::QpSeeker>>(const std::string&)>;

struct ModelManagerOptions {
  /// Gate: candidate mean canary q-error must be <= this ratio times the
  /// live model's (both measured on the same canary set).
  double max_qerror_ratio = 2.0;

  /// Floor applied to the live baseline before the ratio, so a
  /// near-perfect live model (q-error ~1) doesn't make the gate
  /// unpassable for an equally good candidate.
  double min_live_qerror = 1.05;
};

class ModelManager {
 public:
  struct Stats {
    int64_t reloads = 0;          ///< candidates that passed and now serve(d)
    int64_t reload_failures = 0;  ///< load / probe / swap-hook failures
    double live_qerror = 0.0;     ///< canary baseline of the serving model
    double last_candidate_qerror = 0.0;  ///< most recent probe result
    /// Whether the most recent probed candidate served int8 weights (the
    /// quant gate: its canary q-error was measured through the int8 path).
    bool last_candidate_quantized = false;
  };

  /// `initial` is the currently serving model (may be null when serving
  /// starts baseline-only); `factory` builds candidates for Reload.
  ModelManager(std::shared_ptr<core::QpSeeker> initial, ModelFactory factory,
               ModelManagerOptions options = {});

  /// The serving model. Holders keep their snapshot alive across swaps.
  std::shared_ptr<const core::QpSeeker> live() const;

  /// Registers the probe workload and measures the live model's baseline
  /// q-error on it. Call while the live model is quiescent (startup, or
  /// right after a swap completes) — the forward pass is not concurrently
  /// callable with serving traffic.
  Status SetCanaries(std::vector<CanaryCase> canaries);

  /// Installed swap callback, e.g. PlanService::SwapModel: receives the
  /// validated candidate and must atomically switch serving over to it.
  /// A failing hook counts as a failed reload (live model keeps serving).
  void SetSwapHook(
      std::function<Status(std::shared_ptr<const core::QpSeeker>)> hook);

  /// Loads, validates, and (on success) swaps in the checkpoint at `path`.
  /// On any failure the live model keeps serving and the Status says which
  /// stage rejected the candidate.
  Status Reload(const std::string& path);

  Stats stats() const;

 private:
  /// Mean canary q-error of `model`, which must not be serving traffic.
  /// Fails on any non-finite prediction. Returns 1 (perfect) with no
  /// canaries registered.
  StatusOr<double> CanaryQError(const core::QpSeeker& model) const;

  const ModelFactory factory_;
  const ModelManagerOptions options_;

  /// Serializes Reload calls end to end.
  std::mutex reload_mu_;

  mutable std::mutex mu_;  ///< guards everything below
  std::shared_ptr<core::QpSeeker> live_;
  /// Immutable snapshot: probes copy the shared_ptr under mu_ and keep the
  /// cases alive even if SetCanaries swaps in a new set mid-probe.
  std::shared_ptr<const std::vector<CanaryCase>> canaries_;
  std::function<Status(std::shared_ptr<const core::QpSeeker>)> swap_hook_;
  Stats stats_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_MODEL_MANAGER_H_
