// Copyright 2026 The QPSeeker Authors
//
// Sharded multi-tenant serving: many (database, model, planner-config)
// workloads in one process, isolated from each other. The service owns N
// shards; each shard owns one worker pool and hosts the subset of tenants
// the consistent-hash ring (tenant.h) assigns to it. Every tenant gets its
// own PlanService core — per-tenant planner slots, admission quota, and
// BatchRendezvous — running on the shard's pool, so:
//
//  - batching stays intra-tenant and therefore intra-model (cross-query
//    fusion keeps working, and plans stay bit-identical to single-tenant
//    serving for the same (tenant, query, seed));
//  - a hot tenant exhausts *its* quota (max_pending) and sheds or degrades
//    on its own budget, while cold tenants on the same shard keep their
//    latency — the shard's pool_max_queue is only a backstop against
//    aggregate overload;
//  - model swaps are per tenant (SwapTenantModel quiesces only that
//    tenant's planner slots), so a ModelManager canary gate can guard each
//    tenant's reloads independently.
//
// Control plane: AddTenant / RemoveTenant / SwapTenantModel are safe under
// live traffic. RemoveTenant unroutes the tenant first (new Submits return
// kNotFound), then quiesces its core — in-flight futures resolve before
// the core is destroyed.
//
// Self-healing (DESIGN.md §16): every planning attempt's outcome feeds a
// per-tenant HealthMonitor breaker; a tenant whose error rate trips the
// window is quarantined — Submit fast-fails kUnavailable (reason
// "quarantined"), or degrades to the inline DP planner when the tenant's
// quota allows — then recovered through live half-open probes. Transient
// failures (injected chaos, shed bursts) are retried under the request's
// deadline budget with seeded deterministic backoff, at the caller for
// synchronously-failing submissions and on the worker for planning
// failures.
//
// Metrics: every tenant core feeds qps.tenant.{requests,shed,
// latency_ms}.<tenant_id> windowed series; RecordQError feeds
// qps.tenant.qerr.<tenant_id> from execution feedback; the breaker feeds
// qps.health.{state,quarantines,probes,recoveries}.<key> and the retry
// loops qps.serve.retries.{attempts,exhausted,success_after_retry}.

#ifndef QPS_SERVE_SHARDED_SERVICE_H_
#define QPS_SERVE_SHARDED_SERVICE_H_

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/health.h"
#include "serve/tenant.h"

namespace qps {
namespace serve {

struct ShardedPlanServiceOptions {
  /// Shard count; each shard runs its own worker pool.
  int shards = 2;

  /// Worker threads per shard pool. Also the planner-slot count of every
  /// tenant core on the shard (a tenant can use the whole shard when it is
  /// alone on it).
  int workers_per_shard = 4;

  /// Backstop on each shard pool's queue, across all of its tenants
  /// (0 = unbounded). Tenants shed on their own quota first; this bound
  /// only trips when the aggregate outruns the pool.
  size_t shard_max_queue = 256;

  /// Deadline for requests that don't carry their own (0 = none).
  double default_deadline_ms = 0.0;

  /// Cross-query batching knobs for every tenant rendezvous.
  int max_batch = 16;
  double flush_timeout_ms = 0.5;

  /// Optional audit log shared by every tenant core (records carry the
  /// tenant id). Non-owning.
  obs::AuditLog* audit = nullptr;

  /// Per-tenant circuit breaker (serve/health.h): planning outcomes feed a
  /// rolling error-rate window per tenant; a tripping tenant is
  /// quarantined (fast-fail kUnavailable, or inline DP degrade when its
  /// quota sets shed_to_baseline) and recovered through live probes.
  /// Per-shard rates are tracked as shadow keys "shard_<i>". Set
  /// health.clock for ManualClock tests.
  HealthOptions health;

  /// Retry policy applied at both levels: the caller-side loop here
  /// (synchronously-failing submissions: injected submit/schedule faults,
  /// quarantine rejections) and each tenant core's worker-side loop
  /// (transient planning failures). Disabled by default.
  RetryPolicy retry;
};

class ShardedPlanService {
 public:
  static StatusOr<std::unique_ptr<ShardedPlanService>> Create(
      ShardedPlanServiceOptions options = {});

  ~ShardedPlanService();

  ShardedPlanService(const ShardedPlanService&) = delete;
  ShardedPlanService& operator=(const ShardedPlanService&) = delete;

  /// Registers the tenant and builds its core on the owning shard.
  /// kInvalidArgument for bad ids/deps, kAlreadyExists for duplicates.
  Status AddTenant(TenantSpec spec);

  /// Unroutes the tenant (subsequent Submits return kNotFound), quiesces
  /// its in-flight requests (their futures resolve), then destroys the
  /// core. kNotFound for unknown tenants.
  Status RemoveTenant(const std::string& tenant_id);

  /// Hot-swaps one tenant's model under traffic (PlanService::SwapModel on
  /// its core): use as the per-tenant ModelManager swap hook so each
  /// tenant's reloads ride the canary q-error gate independently.
  Status SwapTenantModel(const std::string& tenant_id,
                         std::shared_ptr<const core::QpSeeker> model);

  /// Routes by request.tenant_id. Unknown or empty tenant ids resolve the
  /// future immediately with kNotFound; quota exhaustion behaves like the
  /// tenant's PlanService (kResourceExhausted or inline degrade).
  std::future<StatusOr<core::PlanResult>> Submit(PlanRequest request);

  /// Execution feedback: records one runtime q-error sample into the
  /// tenant's qps.tenant.qerr.<id> window. Unknown tenants are ignored.
  void RecordQError(const std::string& tenant_id, double qerror);

  /// Deterministic shard assignment (pure function of id + shard count).
  int ShardOf(const std::string& tenant_id) const {
    return ring_.ShardFor(tenant_id);
  }

  StatusOr<PlanService::Stats> TenantStats(const std::string& tenant_id) const;
  StatusOr<core::GuardStats> TenantGuardStats(
      const std::string& tenant_id) const;

  /// Breaker stats for one tenant (kNotFound for unknown tenants) and the
  /// whole monitor (tenants plus shard_<i> shadow keys), for qpsql \health.
  StatusOr<HealthMonitor::KeyStats> TenantHealth(
      const std::string& tenant_id) const;
  const HealthMonitor& health() const { return health_; }

  const TenantRegistry& registry() const { return registry_; }
  std::vector<std::string> tenant_ids() const { return registry_.ids(); }
  int num_shards() const { return ring_.num_shards(); }

 private:
  explicit ShardedPlanService(ShardedPlanServiceOptions options);

  struct Shard {
    std::unique_ptr<util::ThreadPool> pool;
    mutable std::mutex mu;  ///< guards `tenants`
    /// shared_ptr so Submit can drop the shard lock before the (possibly
    /// inline-degrading) core call, and RemoveTenant can quiesce outside
    /// the lock.
    std::map<std::string, std::shared_ptr<PlanService>> tenants;
  };

  /// The tenant's core, or null. Never blocks on more than the shard map
  /// lock.
  std::shared_ptr<PlanService> FindCore(const std::string& tenant_id) const;

  /// The AttemptCallback bound into every tenant core: feeds the breaker
  /// (tenant key) and the shard shadow key, skipping cancelled outcomes.
  void RecordAttempt(const std::string& shard_key, const PlanRequest& request,
                     const Status& outcome, bool final_attempt);

  ShardedPlanServiceOptions options_;
  ShardRing ring_;
  TenantRegistry registry_;
  /// Declared before shards_: tenant cores (owned by shards_) hold
  /// callbacks into the monitor, so it must be destroyed after them.
  HealthMonitor health_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex qerr_mu_;
  std::map<std::string, obs::WindowedHistogram*> qerr_windows_;
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_SHARDED_SERVICE_H_
