// Copyright 2026 The QPSeeker Authors
//
// Deadline-budgeted retry policy for the serving path. Transient failures
// — shed load (kResourceExhausted), quarantined-but-recovering tenants
// (kUnavailable), injected transients (kIOError) — are retried with
// exponential backoff; terminal failures (bad queries, blown deadlines,
// cancellations, backend defects) are surfaced immediately. Every attempt
// is budgeted against the request's remaining deadline_ms: a retry that
// cannot fit its backoff plus a minimum attempt inside the budget is not
// taken, so retries never extend latency past the contract.
//
// Determinism: the jitter is a pure function of (request seed, attempt),
// drawn from a splitmix64 finalizer rather than a shared RNG, so a fixed
// seed yields a byte-identical retry schedule — and, since planning is a
// function of (query, seed) alone, a byte-identical plan — no matter which
// thread retries or what else the service is doing.

#ifndef QPS_SERVE_RETRY_H_
#define QPS_SERVE_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "util/status.h"

namespace qps {
namespace serve {

struct RetryPolicy {
  /// Retries after the first attempt (0 disables retrying entirely).
  int max_retries = 0;

  /// Backoff before retry k (1-based): base * multiplier^(k-1), jittered
  /// by +-jitter_frac, capped at max_backoff_ms.
  double backoff_base_ms = 2.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 200.0;
  double jitter_frac = 0.25;

  bool enabled() const { return max_retries > 0; }

  /// The jittered backoff before retry `attempt` (1-based), deterministic
  /// in (seed, attempt).
  double BackoffMs(int attempt, uint64_t seed) const {
    double backoff = backoff_base_ms;
    for (int i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
    backoff = std::min(backoff, max_backoff_ms);
    if (jitter_frac > 0.0) {
      // splitmix64 finalizer over (seed, attempt): deterministic,
      // stateless, well-mixed even for adjacent seeds.
      uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt + 1);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const double unit =
          static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
      backoff *= 1.0 + jitter_frac * (2.0 * unit - 1.0);
    }
    return backoff;
  }

  /// True when retry `attempt` (1-based) is classification-eligible for
  /// `failure`: the status is transient and the attempt cap has room. The
  /// caller still checks the deadline budget against BackoffMs — see
  /// FitsBudget.
  bool ShouldRetry(const Status& failure, int attempt) const {
    if (!enabled() || attempt > max_retries) return false;
    return !failure.ok() && failure.IsRetryable();
  }

  /// True when `backoff_ms` plus a minimum useful attempt (~1ms) still fit
  /// the deadline budget. `deadline_ms` <= 0 means no deadline (always
  /// fits).
  static bool FitsBudget(double backoff_ms, double elapsed_ms,
                         double deadline_ms) {
    if (deadline_ms <= 0.0) return true;
    return elapsed_ms + backoff_ms + 1.0 < deadline_ms;
  }
};

}  // namespace serve
}  // namespace qps

#endif  // QPS_SERVE_RETRY_H_
