// Copyright 2026 The QPSeeker Authors

#include "serve/sharded_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/window.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace qps {
namespace serve {

namespace {

/// A future already resolved to `result`, for routing errors and
/// caller-side retry outcomes that never reach (or already left) a tenant
/// core.
std::future<StatusOr<core::PlanResult>> ReadyFuture(
    StatusOr<core::PlanResult> result) {
  std::promise<StatusOr<core::PlanResult>> promise;
  auto future = promise.get_future();
  promise.set_value(std::move(result));
  return future;
}

/// Caller-side retry accounting; same metric families the worker-side loop
/// in PlanService feeds.
struct RetryMetrics {
  metrics::Counter* attempts;
  metrics::Counter* exhausted;
  metrics::Counter* success;
  obs::WindowedCounter* attempts_window;

  static const RetryMetrics& Get() {
    static const RetryMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      RetryMetrics out;
      out.attempts = reg.GetCounter("qps.serve.retries.attempts");
      out.exhausted = reg.GetCounter("qps.serve.retries.exhausted");
      out.success = reg.GetCounter("qps.serve.retries.success_after_retry");
      out.attempts_window =
          obs::WindowRegistry::Global().GetCounter("qps.serve.retries.attempts");
      return out;
    }();
    return m;
  }
};

}  // namespace

StatusOr<std::unique_ptr<ShardedPlanService>> ShardedPlanService::Create(
    ShardedPlanServiceOptions options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("ShardedPlanService needs >= 1 shard");
  }
  if (options.workers_per_shard < 1) {
    return Status::InvalidArgument(
        "ShardedPlanService needs >= 1 worker per shard");
  }
  return std::unique_ptr<ShardedPlanService>(
      new ShardedPlanService(std::move(options)));
}

ShardedPlanService::ShardedPlanService(ShardedPlanServiceOptions options)
    : options_(std::move(options)),
      ring_(options_.shards),
      health_(options_.health) {
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool =
        std::make_unique<util::ThreadPool>(options_.workers_per_shard);
    shards_.push_back(std::move(shard));
  }
}

ShardedPlanService::~ShardedPlanService() {
  // Tenant cores run on shard pools they don't own; quiesce each one
  // before any pool is torn down (members destroy in reverse declaration
  // order, so shards_ — and with it the pools — outlive this loop).
  for (auto& shard : shards_) {
    std::map<std::string, std::shared_ptr<PlanService>> tenants;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      tenants.swap(shard->tenants);
    }
    for (auto& [id, core] : tenants) core->Quiesce();
  }
}

Status ShardedPlanService::AddTenant(TenantSpec spec) {
  // Registry first: it owns id validation and duplicate rejection.
  QPS_RETURN_IF_ERROR(registry_.Add(spec));
  const int shard_index = ring_.ShardFor(spec.tenant_id);
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];

  PlanServiceOptions sopts;
  sopts.workers = options_.workers_per_shard;  // planner slots
  sopts.max_queue = spec.quota.max_pending;
  sopts.pool = shard.pool.get();
  sopts.pool_max_queue = options_.shard_max_queue;
  sopts.tenant_id = spec.tenant_id;
  sopts.default_deadline_ms = options_.default_deadline_ms;
  sopts.shed_to_baseline = spec.quota.shed_to_baseline;
  sopts.max_batch = options_.max_batch;
  sopts.flush_timeout_ms = options_.flush_timeout_ms;
  sopts.audit = options_.audit;
  sopts.retry = options_.retry;
  // Every planning attempt feeds the tenant breaker and the shard's shadow
  // rate key. `this` outlives the core: RemoveTenant and the destructor
  // quiesce the core before destroying it, and health_ is declared before
  // shards_.
  sopts.on_attempt = [this, shard_index](const PlanRequest& request,
                                         const Status& outcome,
                                         bool final_attempt) {
    RecordAttempt("shard_" + std::to_string(shard_index), request, outcome,
                  final_attempt);
  };

  const std::string tenant_id = spec.tenant_id;
  auto core_or = PlanService::Create(std::move(spec.deps), std::move(sopts));
  if (!core_or.ok()) {
    // Roll the registration back so a failed build leaves no ghost tenant.
    (void)registry_.Remove(tenant_id);
    return core_or.status();
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tenants.emplace(tenant_id, std::move(*core_or));
  }
  metrics::Registry::Global()
      .GetGauge("qps.tenant.count")
      ->Set(static_cast<double>(registry_.size()));
  return Status::OK();
}

Status ShardedPlanService::RemoveTenant(const std::string& tenant_id) {
  QPS_RETURN_IF_ERROR(registry_.Remove(tenant_id));
  Shard& shard = *shards_[static_cast<size_t>(ring_.ShardFor(tenant_id))];
  std::shared_ptr<PlanService> core;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.tenants.find(tenant_id);
    if (it != shard.tenants.end()) {
      core = std::move(it->second);
      shard.tenants.erase(it);
    }
  }
  if (core != nullptr) {
    // Unrouted above; wait out everything already admitted so every
    // in-flight future resolves before the core (and its planners /
    // rendezvous) is destroyed.
    core->Quiesce();
  }
  metrics::Registry::Global()
      .GetGauge("qps.tenant.count")
      ->Set(static_cast<double>(registry_.size()));
  return Status::OK();
}

void ShardedPlanService::RecordAttempt(const std::string& shard_key,
                                       const PlanRequest& request,
                                       const Status& outcome,
                                       bool final_attempt) {
  // Cancellation is caller-driven, not model health: a cancelled outcome
  // must neither trip nor recover the breaker. A cancelled probe still has
  // to give its slot back.
  if (outcome.reason() == "cancelled") {
    if (final_attempt && request.health_probe) {
      health_.AbandonProbe(request.tenant_id);
    }
    return;
  }
  health_.RecordObserved(shard_key, outcome);
  // Intermediate (retried) attempts count as plain samples; only the final
  // outcome settles a probe admission.
  health_.Record(request.tenant_id, outcome,
                 final_attempt && request.health_probe);
}

Status ShardedPlanService::SwapTenantModel(
    const std::string& tenant_id,
    std::shared_ptr<const core::QpSeeker> model) {
  {
    // Chaos hook for control-plane swaps (e.g. a canary push racing live
    // traffic); scoped so only_context specs can target one tenant.
    fault::ScopedContext fault_ctx(tenant_id);
    QPS_RETURN_IF_ERROR(fault::Check("tenant.swap"));
  }
  std::shared_ptr<PlanService> core = FindCore(tenant_id);
  if (core == nullptr) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  QPS_RETURN_IF_ERROR(core->SwapModel(model));
  return registry_.UpdateModel(tenant_id, std::move(model));
}

std::shared_ptr<PlanService> ShardedPlanService::FindCore(
    const std::string& tenant_id) const {
  if (tenant_id.empty()) return nullptr;
  const Shard& shard =
      *shards_[static_cast<size_t>(ring_.ShardFor(tenant_id))];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.tenants.find(tenant_id);
  return it != shard.tenants.end() ? it->second : nullptr;
}

std::future<StatusOr<core::PlanResult>> ShardedPlanService::Submit(
    PlanRequest request) {
  std::shared_ptr<PlanService> core = FindCore(request.tenant_id);
  if (core == nullptr) {
    return ReadyFuture(Status::NotFound(
        request.tenant_id.empty()
            ? "PlanRequest.tenant_id is required for sharded serving"
            : "no such tenant: " + request.tenant_id));
  }
  const std::string tenant_id = request.tenant_id;
  const RetryPolicy& retry = options_.retry;
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  Timer timer;

  // Caller-side retry: handles failures that resolve synchronously on this
  // thread — injected shard.schedule/serve.submit faults, quarantine
  // rejections, shed bursts — before the caller ever sees them. Anything
  // that makes it onto a worker resolves through the worker-side loop
  // instead; its future is returned as-is (never blocked on here).
  for (int attempt = 1;; ++attempt) {
    Status failure = Status::OK();
    {
      fault::ScopedContext fault_ctx(tenant_id);
      failure = fault::Check("shard.schedule");
    }
    if (failure.ok()) {
      const AdmitDecision admit = health_.Admit(tenant_id);
      if (admit == AdmitDecision::kReject) {
        if (core->options().shed_to_baseline) {
          // Quarantined but degradable: serve an inline DP plan without
          // touching the shard pool the quarantine is protecting.
          return core->SubmitDegraded(std::move(request), "quarantined");
        }
        failure = Status::Unavailable("tenant quarantined by health monitor")
                      .SetReason("quarantined");
      } else {
        const bool probe = (admit == AdmitDecision::kProbe);
        request.health_probe = probe;
        PlanRequest replay;
        const bool may_replay = retry.enabled();
        if (may_replay) replay = request;
        auto future = core->Submit(std::move(request));
        if (future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          // Admitted onto a worker; the worker-side loop owns retries and
          // health recording from here.
          if (attempt > 1) RetryMetrics::Get().success->Increment();
          return future;
        }
        // Synchronously resolved: a shed/degrade or an injected submit
        // fault (sharded pools always have workers, so real planning never
        // resolves inline here) — none of which reached the worker, so the
        // probe slot is handed back rather than judged.
        StatusOr<core::PlanResult> ready = future.get();
        if (probe) health_.AbandonProbe(tenant_id);
        if (ready.ok()) {
          if (attempt > 1) RetryMetrics::Get().success->Increment();
          return ReadyFuture(std::move(ready));
        }
        failure = ready.status();
        if (failure.reason() == "fault_injected") {
          health_.Record(tenant_id, failure, /*probe=*/false);
        }
        if (!may_replay) return ReadyFuture(std::move(failure));
        request = std::move(replay);
      }
    }
    if (!retry.ShouldRetry(failure, attempt)) {
      return ReadyFuture(std::move(failure));
    }
    const double backoff_ms = retry.BackoffMs(attempt, request.seed);
    if (!RetryPolicy::FitsBudget(backoff_ms, timer.ElapsedMillis(),
                                 deadline_ms)) {
      RetryMetrics::Get().exhausted->Increment();
      return ReadyFuture(std::move(failure));
    }
    RetryMetrics::Get().attempts->Increment();
    RetryMetrics::Get().attempts_window->Increment();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

void ShardedPlanService::RecordQError(const std::string& tenant_id,
                                      double qerror) {
  if (!registry_.Contains(tenant_id)) return;
  obs::WindowedHistogram* window = nullptr;
  {
    std::lock_guard<std::mutex> lock(qerr_mu_);
    auto it = qerr_windows_.find(tenant_id);
    if (it == qerr_windows_.end()) {
      it = qerr_windows_
               .emplace(tenant_id, obs::WindowRegistry::Global().GetHistogram(
                                       "qps.tenant.qerr." + tenant_id))
               .first;
    }
    window = it->second;
  }
  window->Record(qerror);
}

StatusOr<PlanService::Stats> ShardedPlanService::TenantStats(
    const std::string& tenant_id) const {
  std::shared_ptr<PlanService> core = FindCore(tenant_id);
  if (core == nullptr) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return core->stats();
}

StatusOr<core::GuardStats> ShardedPlanService::TenantGuardStats(
    const std::string& tenant_id) const {
  std::shared_ptr<PlanService> core = FindCore(tenant_id);
  if (core == nullptr) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return core->guard_stats();
}

StatusOr<HealthMonitor::KeyStats> ShardedPlanService::TenantHealth(
    const std::string& tenant_id) const {
  if (!registry_.Contains(tenant_id)) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return health_.stats(tenant_id);
}

}  // namespace serve
}  // namespace qps
