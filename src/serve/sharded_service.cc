// Copyright 2026 The QPSeeker Authors

#include "serve/sharded_service.h"

#include <utility>

#include "obs/window.h"
#include "util/metrics.h"

namespace qps {
namespace serve {

namespace {

/// A future already resolved to `status`, for routing errors that never
/// reach a tenant core.
std::future<StatusOr<core::PlanResult>> ReadyFuture(Status status) {
  std::promise<StatusOr<core::PlanResult>> promise;
  auto future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

}  // namespace

StatusOr<std::unique_ptr<ShardedPlanService>> ShardedPlanService::Create(
    ShardedPlanServiceOptions options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("ShardedPlanService needs >= 1 shard");
  }
  if (options.workers_per_shard < 1) {
    return Status::InvalidArgument(
        "ShardedPlanService needs >= 1 worker per shard");
  }
  return std::unique_ptr<ShardedPlanService>(
      new ShardedPlanService(std::move(options)));
}

ShardedPlanService::ShardedPlanService(ShardedPlanServiceOptions options)
    : options_(std::move(options)), ring_(options_.shards) {
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool =
        std::make_unique<util::ThreadPool>(options_.workers_per_shard);
    shards_.push_back(std::move(shard));
  }
}

ShardedPlanService::~ShardedPlanService() {
  // Tenant cores run on shard pools they don't own; quiesce each one
  // before any pool is torn down (members destroy in reverse declaration
  // order, so shards_ — and with it the pools — outlive this loop).
  for (auto& shard : shards_) {
    std::map<std::string, std::shared_ptr<PlanService>> tenants;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      tenants.swap(shard->tenants);
    }
    for (auto& [id, core] : tenants) core->Quiesce();
  }
}

Status ShardedPlanService::AddTenant(TenantSpec spec) {
  // Registry first: it owns id validation and duplicate rejection.
  QPS_RETURN_IF_ERROR(registry_.Add(spec));
  Shard& shard = *shards_[static_cast<size_t>(ring_.ShardFor(spec.tenant_id))];

  PlanServiceOptions sopts;
  sopts.workers = options_.workers_per_shard;  // planner slots
  sopts.max_queue = spec.quota.max_pending;
  sopts.pool = shard.pool.get();
  sopts.pool_max_queue = options_.shard_max_queue;
  sopts.tenant_id = spec.tenant_id;
  sopts.default_deadline_ms = options_.default_deadline_ms;
  sopts.shed_to_baseline = spec.quota.shed_to_baseline;
  sopts.max_batch = options_.max_batch;
  sopts.flush_timeout_ms = options_.flush_timeout_ms;
  sopts.audit = options_.audit;

  const std::string tenant_id = spec.tenant_id;
  auto core_or = PlanService::Create(std::move(spec.deps), std::move(sopts));
  if (!core_or.ok()) {
    // Roll the registration back so a failed build leaves no ghost tenant.
    (void)registry_.Remove(tenant_id);
    return core_or.status();
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tenants.emplace(tenant_id, std::move(*core_or));
  }
  metrics::Registry::Global()
      .GetGauge("qps.tenant.count")
      ->Set(static_cast<double>(registry_.size()));
  return Status::OK();
}

Status ShardedPlanService::RemoveTenant(const std::string& tenant_id) {
  QPS_RETURN_IF_ERROR(registry_.Remove(tenant_id));
  Shard& shard = *shards_[static_cast<size_t>(ring_.ShardFor(tenant_id))];
  std::shared_ptr<PlanService> core;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.tenants.find(tenant_id);
    if (it != shard.tenants.end()) {
      core = std::move(it->second);
      shard.tenants.erase(it);
    }
  }
  if (core != nullptr) {
    // Unrouted above; wait out everything already admitted so every
    // in-flight future resolves before the core (and its planners /
    // rendezvous) is destroyed.
    core->Quiesce();
  }
  metrics::Registry::Global()
      .GetGauge("qps.tenant.count")
      ->Set(static_cast<double>(registry_.size()));
  return Status::OK();
}

Status ShardedPlanService::SwapTenantModel(
    const std::string& tenant_id,
    std::shared_ptr<const core::QpSeeker> model) {
  std::shared_ptr<PlanService> core = FindCore(tenant_id);
  if (core == nullptr) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  QPS_RETURN_IF_ERROR(core->SwapModel(model));
  return registry_.UpdateModel(tenant_id, std::move(model));
}

std::shared_ptr<PlanService> ShardedPlanService::FindCore(
    const std::string& tenant_id) const {
  if (tenant_id.empty()) return nullptr;
  const Shard& shard =
      *shards_[static_cast<size_t>(ring_.ShardFor(tenant_id))];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.tenants.find(tenant_id);
  return it != shard.tenants.end() ? it->second : nullptr;
}

std::future<StatusOr<core::PlanResult>> ShardedPlanService::Submit(
    PlanRequest request) {
  std::shared_ptr<PlanService> core = FindCore(request.tenant_id);
  if (core == nullptr) {
    return ReadyFuture(Status::NotFound(
        request.tenant_id.empty()
            ? "PlanRequest.tenant_id is required for sharded serving"
            : "no such tenant: " + request.tenant_id));
  }
  return core->Submit(std::move(request));
}

void ShardedPlanService::RecordQError(const std::string& tenant_id,
                                      double qerror) {
  if (!registry_.Contains(tenant_id)) return;
  obs::WindowedHistogram* window = nullptr;
  {
    std::lock_guard<std::mutex> lock(qerr_mu_);
    auto it = qerr_windows_.find(tenant_id);
    if (it == qerr_windows_.end()) {
      it = qerr_windows_
               .emplace(tenant_id, obs::WindowRegistry::Global().GetHistogram(
                                       "qps.tenant.qerr." + tenant_id))
               .first;
    }
    window = it->second;
  }
  window->Record(qerror);
}

StatusOr<PlanService::Stats> ShardedPlanService::TenantStats(
    const std::string& tenant_id) const {
  std::shared_ptr<PlanService> core = FindCore(tenant_id);
  if (core == nullptr) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return core->stats();
}

StatusOr<core::GuardStats> ShardedPlanService::TenantGuardStats(
    const std::string& tenant_id) const {
  std::shared_ptr<PlanService> core = FindCore(tenant_id);
  if (core == nullptr) {
    return Status::NotFound("no such tenant: " + tenant_id);
  }
  return core->guard_stats();
}

}  // namespace serve
}  // namespace qps
