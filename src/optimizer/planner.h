// Copyright 2026 The QPSeeker Authors
//
// The PostgreSQL-like baseline planner: Selinger-style dynamic programming
// over connected left-deep join orders with per-node operator selection,
// falling back to a greedy heuristic for very large queries (the analogue
// of GEQO). Also provides EXPLAIN and hint-style operator masking, which
// the Bao baseline drives.

#ifndef QPS_OPTIMIZER_PLANNER_H_
#define QPS_OPTIMIZER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "util/cancel.h"
#include "util/status.h"

namespace qps {
namespace optimizer {

/// Operator-availability hints (Bao-style "disable" flags).
struct PlanHints {
  bool enable_seqscan = true;
  bool enable_indexscan = true;
  bool enable_bitmapscan = true;
  bool enable_hashjoin = true;
  bool enable_mergejoin = true;
  bool enable_nestloop = true;

  std::vector<query::OpType> AllowedScans() const;
  std::vector<query::OpType> AllowedJoins() const;
  bool Valid() const;  ///< at least one scan and one join enabled

  /// Compact rendering like "hash,merge|seq,index".
  std::string ToString() const;
};

class Planner {
 public:
  Planner(const storage::Database& db, const stats::DatabaseStats& stats);

  /// Chooses a plan for `q` and fills estimated stats on every node.
  /// `cancel` (util/cancel.h, null = never) is polled once per DP mask /
  /// greedy step, so an abandoned request stops enumerating join orders;
  /// a tripped token returns its Check() status (kAborted or
  /// kDeadlineExceeded).
  StatusOr<query::PlanPtr> Plan(const query::Query& q,
                                const PlanHints& hints = {},
                                const util::CancelToken* cancel = nullptr) const;

  /// Fits ms_per_cost by executing the chosen plans of `sample` queries
  /// (least squares through the origin). Returns the fitted factor.
  double Calibrate(const std::vector<query::Query>& sample, exec::Executor* ex);

  /// EXPLAIN-style rendering of a plan with this planner's estimates.
  std::string Explain(const query::Query& q, const query::PlanNode& plan) const;

  const CostModel& cost_model() const { return cost_; }
  CostModel* mutable_cost_model() { return &cost_; }
  const CardinalityEstimator& cards() const { return cards_; }

  /// Queries with more relations than this use the greedy fallback.
  static constexpr int kDpRelationLimit = 12;

 private:
  query::PlanPtr PlanDp(const query::Query& q, const PlanHints& hints,
                        const util::CancelToken* cancel) const;
  query::PlanPtr PlanGreedy(const query::Query& q, const PlanHints& hints,
                            const util::CancelToken* cancel) const;

  /// Cheapest scan leaf for one relation under the hints.
  query::PlanPtr BestScan(const query::Query& q, int rel, const PlanHints& hints) const;

  /// Cheapest join node combining `left` with scan of `rel` (nullptr if no
  /// connecting predicate exists).
  query::PlanPtr BestJoin(const query::Query& q, query::PlanPtr left, int rel,
                          const PlanHints& hints) const;

  const storage::Database& db_;
  CardinalityEstimator cards_;
  CostModel cost_;
};

}  // namespace optimizer
}  // namespace qps

#endif  // QPS_OPTIMIZER_PLANNER_H_
