// Copyright 2026 The QPSeeker Authors
//
// Statistics-based cardinality estimation — the estimator inside the
// PostgreSQL-like baseline. Uses per-column histograms/MCVs with attribute
// independence and the classic |L ⋈ R| = |L||R| / max(ndv_l, ndv_r) join
// formula. Its systematic errors on many-join queries (paper §7.1.3,
// Table 4 "PostgreSQL" column) are exactly the classic ones.

#ifndef QPS_OPTIMIZER_CARDINALITY_H_
#define QPS_OPTIMIZER_CARDINALITY_H_

#include "query/plan.h"
#include "query/query.h"
#include "stats/analyze.h"
#include "storage/database.h"

namespace qps {
namespace optimizer {

class CardinalityEstimator {
 public:
  CardinalityEstimator(const storage::Database& db, const stats::DatabaseStats& stats)
      : db_(db), stats_(stats) {}

  /// Combined selectivity of all filters on one relation (independence).
  double FilterSelectivity(const query::Query& q, int rel) const;

  /// Estimated output rows of a scan over `rel` (filters applied).
  double ScanRows(const query::Query& q, int rel) const;

  /// Selectivity of one join predicate: 1 / max(ndv_left, ndv_right).
  double JoinPredicateSelectivity(const query::Query& q,
                                  const query::JoinPredicate& jp) const;

  /// Estimated rows of joining subresults of `left_rows` x `right_rows` via
  /// the given predicates (selectivities multiply).
  double JoinRows(const query::Query& q, double left_rows, double right_rows,
                  const std::vector<int>& join_preds) const;

  /// Fills `estimated.cardinality` on every node of a plan, bottom-up.
  void EstimatePlanCardinalities(const query::Query& q, query::PlanNode* plan) const;

  const stats::DatabaseStats& stats() const { return stats_; }
  const storage::Database& db() const { return db_; }

 private:
  const storage::Database& db_;
  const stats::DatabaseStats& stats_;
};

}  // namespace optimizer
}  // namespace qps

#endif  // QPS_OPTIMIZER_CARDINALITY_H_
