// Copyright 2026 The QPSeeker Authors

#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace qps {
namespace optimizer {

double CardinalityEstimator::FilterSelectivity(const query::Query& q, int rel) const {
  const int table_id = q.relations[static_cast<size_t>(rel)].table_id;
  double sel = 1.0;
  for (const auto& f : q.filters) {
    if (f.rel != rel) continue;
    const auto& cs = stats_.column(table_id, f.column);
    sel *= std::clamp(cs.Selectivity(f.op, f.value.AsDouble()), 0.0, 1.0);
  }
  return sel;
}

double CardinalityEstimator::ScanRows(const query::Query& q, int rel) const {
  const int table_id = q.relations[static_cast<size_t>(rel)].table_id;
  const double rows = static_cast<double>(stats_.table(table_id).row_count);
  return std::max(1.0, rows * FilterSelectivity(q, rel));
}

double CardinalityEstimator::JoinPredicateSelectivity(
    const query::Query& q, const query::JoinPredicate& jp) const {
  const int lt = q.relations[static_cast<size_t>(jp.left_rel)].table_id;
  const int rt = q.relations[static_cast<size_t>(jp.right_rel)].table_id;
  const double ndv_l =
      std::max<double>(1.0, static_cast<double>(stats_.column(lt, jp.left_column).distinct_count));
  const double ndv_r =
      std::max<double>(1.0, static_cast<double>(stats_.column(rt, jp.right_column).distinct_count));
  return 1.0 / std::max(ndv_l, ndv_r);
}

double CardinalityEstimator::JoinRows(const query::Query& q, double left_rows,
                                      double right_rows,
                                      const std::vector<int>& join_preds) const {
  double sel = 1.0;
  for (int p : join_preds) {
    sel *= JoinPredicateSelectivity(q, q.joins[static_cast<size_t>(p)]);
  }
  return std::max(1.0, left_rows * right_rows * sel);
}

void CardinalityEstimator::EstimatePlanCardinalities(const query::Query& q,
                                                     query::PlanNode* plan) const {
  plan->PostOrderMutable([&](query::PlanNode& node) {
    if (node.is_leaf()) {
      node.estimated.cardinality = ScanRows(q, node.rel);
    } else {
      node.estimated.cardinality =
          JoinRows(q, node.left->estimated.cardinality,
                   node.right->estimated.cardinality, node.join_preds);
    }
  });
}

}  // namespace optimizer
}  // namespace qps
