// Copyright 2026 The QPSeeker Authors

#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace qps {
namespace optimizer {

using query::OpType;
using query::PlanNode;
using query::PlanPtr;
using query::Query;

std::vector<OpType> PlanHints::AllowedScans() const {
  std::vector<OpType> out;
  if (enable_seqscan) out.push_back(OpType::kSeqScan);
  if (enable_indexscan) out.push_back(OpType::kIndexScan);
  if (enable_bitmapscan) out.push_back(OpType::kBitmapIndexScan);
  return out;
}

std::vector<OpType> PlanHints::AllowedJoins() const {
  std::vector<OpType> out;
  if (enable_hashjoin) out.push_back(OpType::kHashJoin);
  if (enable_mergejoin) out.push_back(OpType::kMergeJoin);
  if (enable_nestloop) out.push_back(OpType::kNestedLoopJoin);
  return out;
}

bool PlanHints::Valid() const {
  return !AllowedScans().empty() && !AllowedJoins().empty();
}

std::string PlanHints::ToString() const {
  std::vector<std::string> joins, scans;
  if (enable_hashjoin) joins.push_back("hash");
  if (enable_mergejoin) joins.push_back("merge");
  if (enable_nestloop) joins.push_back("nl");
  if (enable_seqscan) scans.push_back("seq");
  if (enable_indexscan) scans.push_back("index");
  if (enable_bitmapscan) scans.push_back("bitmap");
  return StrJoin(joins, ",") + "|" + StrJoin(scans, ",");
}

Planner::Planner(const storage::Database& db, const stats::DatabaseStats& stats)
    : db_(db), cards_(db, stats), cost_(cards_) {}

PlanPtr Planner::BestScan(const Query& q, int rel, const PlanHints& hints) const {
  PlanPtr best;
  const double rows = cards_.ScanRows(q, rel);
  const bool has_filter = !q.FiltersFor(rel).empty();
  for (OpType op : hints.AllowedScans()) {
    // Index-driven scans need a filter to drive the index; otherwise they
    // degrade to full sweeps the cost model penalizes but we still allow.
    auto leaf = std::make_unique<PlanNode>();
    leaf->op = op;
    leaf->rel = rel;
    leaf->estimated.cardinality = rows;
    double out_rows_for_cost = rows;
    if (!has_filter && op != OpType::kSeqScan) {
      // Full index sweep: every tuple fetched.
      const int table_id = q.relations[static_cast<size_t>(rel)].table_id;
      out_rows_for_cost = static_cast<double>(db_.table(table_id).num_rows());
    }
    leaf->estimated.cost = cost_.NodeCost(q, *leaf, 0, 0, out_rows_for_cost);
    leaf->estimated.runtime_ms = leaf->estimated.cost * cost_.ms_per_cost();
    if (!best || leaf->estimated.cost < best->estimated.cost) best = std::move(leaf);
  }
  return best;
}

PlanPtr Planner::BestJoin(const Query& q, PlanPtr left, int rel,
                          const PlanHints& hints) const {
  const uint64_t mask = left->RelMask();
  std::vector<int> preds;
  for (size_t p = 0; p < q.joins.size(); ++p) {
    const auto& jp = q.joins[p];
    if (((mask >> jp.left_rel) & 1 && jp.right_rel == rel) ||
        ((mask >> jp.right_rel) & 1 && jp.left_rel == rel)) {
      preds.push_back(static_cast<int>(p));
    }
  }
  if (preds.empty()) return nullptr;

  PlanPtr right = BestScan(q, rel, hints);
  const double out_rows = cards_.JoinRows(q, left->estimated.cardinality,
                                          right->estimated.cardinality, preds);
  PlanPtr best;
  for (OpType op : hints.AllowedJoins()) {
    auto join = std::make_unique<PlanNode>();
    join->op = op;
    join->join_preds = preds;
    join->estimated.cardinality = out_rows;
    const double own = cost_.NodeCost(q, *join, left->estimated.cardinality,
                                      right->estimated.cardinality, out_rows);
    join->estimated.cost = own + left->estimated.cost + right->estimated.cost;
    join->estimated.runtime_ms = join->estimated.cost * cost_.ms_per_cost();
    if (!best || join->estimated.cost < best->estimated.cost) {
      if (best == nullptr) {
        best = std::move(join);
      } else {
        best->op = join->op;
        best->estimated = join->estimated;
      }
    }
  }
  best->left = std::move(left);
  best->right = std::move(right);
  return best;
}

PlanPtr Planner::PlanDp(const Query& q, const PlanHints& hints,
                        const util::CancelToken* cancel) const {
  const int n = q.num_relations();
  // best[mask] = cheapest left-deep plan covering mask.
  std::unordered_map<uint64_t, PlanPtr> best;
  for (int r = 0; r < n; ++r) {
    best[uint64_t{1} << r] = BestScan(q, r, hints);
  }
  // Enumerate masks in increasing popcount order via plain mask order (any
  // superset has a larger value than its subsets with this construction).
  const uint64_t full = (uint64_t{1} << n) - 1;
  for (uint64_t mask = 1; mask <= full; ++mask) {
    // Cancellation boundary: abandoned requests stop enumerating. Plan()
    // turns the resulting null plan into the token's status.
    if (util::Cancelled(cancel)) return nullptr;
    auto it = best.find(mask);
    if (it == best.end()) continue;
    for (int r = 0; r < n; ++r) {
      if ((mask >> r) & 1) continue;
      PlanPtr candidate = BestJoin(q, it->second->Clone(), r, hints);
      if (candidate == nullptr) continue;
      const uint64_t next = mask | (uint64_t{1} << r);
      auto existing = best.find(next);
      if (existing == best.end() ||
          candidate->estimated.cost < existing->second->estimated.cost) {
        best[next] = std::move(candidate);
      }
    }
  }
  auto it = best.find(full);
  if (it == best.end()) return nullptr;
  return std::move(it->second);
}

PlanPtr Planner::PlanGreedy(const Query& q, const PlanHints& hints,
                            const util::CancelToken* cancel) const {
  const int n = q.num_relations();
  // Start from the relation with the fewest estimated rows, repeatedly add
  // the connecting relation whose join is cheapest.
  int start = 0;
  double best_rows = 1e300;
  for (int r = 0; r < n; ++r) {
    const double rows = cards_.ScanRows(q, r);
    if (rows < best_rows) {
      best_rows = rows;
      start = r;
    }
  }
  PlanPtr cur = BestScan(q, start, hints);
  uint64_t mask = uint64_t{1} << start;
  for (int step = 1; step < n; ++step) {
    if (util::Cancelled(cancel)) return nullptr;
    PlanPtr best;
    int best_rel = -1;
    for (int r = 0; r < n; ++r) {
      if ((mask >> r) & 1) continue;
      PlanPtr candidate = BestJoin(q, cur->Clone(), r, hints);
      if (candidate == nullptr) continue;
      if (!best || candidate->estimated.cost < best->estimated.cost) {
        best = std::move(candidate);
        best_rel = r;
      }
    }
    if (best == nullptr) return nullptr;  // disconnected
    cur = std::move(best);
    mask |= uint64_t{1} << best_rel;
  }
  return cur;
}

StatusOr<PlanPtr> Planner::Plan(const Query& q, const PlanHints& hints,
                                const util::CancelToken* cancel) const {
  // Fault point: even the traditional planner can fail (e.g. stats missing);
  // lets tests exercise the very bottom of the degradation ladder.
  QPS_RETURN_IF_ERROR(fault::Check("planner.dp"));
  static metrics::Counter* const plans_counter =
      metrics::Registry::Global().GetCounter("qps.planner.dp_plans");
  QPS_TRACE_SPAN("planner.dp");
  plans_counter->Increment();
  QPS_RETURN_IF_ERROR(util::CheckCancel(cancel));
  if (q.num_relations() == 0) return Status::InvalidArgument("empty FROM list");
  if (!hints.Valid()) return Status::InvalidArgument("hints disable all operators");
  QPS_RETURN_IF_ERROR(q.Validate(db_));
  if (q.num_relations() > 1 && !q.IsConnected()) {
    return Status::NotImplemented("cross products are not supported");
  }
  PlanPtr plan = q.num_relations() <= kDpRelationLimit
                     ? PlanDp(q, hints, cancel)
                     : PlanGreedy(q, hints, cancel);
  if (plan == nullptr) {
    // Distinguish "enumeration abandoned" from "no plan exists".
    QPS_RETURN_IF_ERROR(util::CheckCancel(cancel));
    return Status::Internal("no plan found");
  }
  // Re-estimate top-down for a consistent final annotation.
  cost_.EstimatePlan(q, plan.get());
  return plan;
}

double Planner::Calibrate(const std::vector<Query>& sample, exec::Executor* ex) {
  double num = 0.0, den = 0.0;
  for (const auto& q : sample) {
    auto plan = Plan(q);
    if (!plan.ok()) continue;
    auto card = ex->Execute(q, plan->get());
    if (!card.ok()) continue;
    num += (*plan)->estimated.cost * (*plan)->actual.runtime_ms;
    den += (*plan)->estimated.cost * (*plan)->estimated.cost;
  }
  if (den > 0.0) cost_.set_ms_per_cost(num / den);
  return cost_.ms_per_cost();
}

std::string Planner::Explain(const Query& q, const PlanNode& plan) const {
  return plan.ToString(db_, q, /*with_actual=*/false);
}

}  // namespace optimizer
}  // namespace qps
