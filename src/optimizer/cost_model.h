// Copyright 2026 The QPSeeker Authors
//
// The baseline optimizer's cost model (PostgreSQL-flavoured formulas over
// estimated cardinalities) plus a cost->milliseconds calibration used for
// the baseline's runtime predictions in Tables 3 and 5.

#ifndef QPS_OPTIMIZER_COST_MODEL_H_
#define QPS_OPTIMIZER_COST_MODEL_H_

#include "optimizer/cardinality.h"
#include "query/plan.h"

namespace qps {
namespace optimizer {

/// Cost constants (PostgreSQL defaults).
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  double cpu_index_tuple_cost = 0.005;
};

class CostModel {
 public:
  explicit CostModel(const CardinalityEstimator& cards, CostParams params = {})
      : cards_(cards), params_(params) {}

  /// Cost of one operator given its (estimated) input/output cardinalities,
  /// excluding children. Scans pass left_rows = right_rows = 0.
  double NodeCost(const query::Query& q, const query::PlanNode& node,
                  double left_rows, double right_rows, double out_rows) const;

  /// Fills estimated.cardinality and estimated.cost (cumulative, like
  /// EXPLAIN's total cost) on every node of the plan; estimated.runtime_ms
  /// uses the calibration factor.
  void EstimatePlan(const query::Query& q, query::PlanNode* plan) const;

  /// ms per cost unit used for estimated.runtime_ms. Default calibration is
  /// roughly right for the simulated machine; Planner::Calibrate refines it.
  void set_ms_per_cost(double v) { ms_per_cost_ = v; }
  double ms_per_cost() const { return ms_per_cost_; }

  const CardinalityEstimator& cards() const { return cards_; }

 private:
  const CardinalityEstimator& cards_;
  CostParams params_;
  double ms_per_cost_ = 0.05;
};

}  // namespace optimizer
}  // namespace qps

#endif  // QPS_OPTIMIZER_COST_MODEL_H_
