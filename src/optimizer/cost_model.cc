// Copyright 2026 The QPSeeker Authors

#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace qps {
namespace optimizer {

using query::OpType;

double CostModel::NodeCost(const query::Query& q, const query::PlanNode& node,
                           double left_rows, double right_rows,
                           double out_rows) const {
  const CostParams& p = params_;
  if (query::IsScan(node.op)) {
    const int table_id = q.relations[static_cast<size_t>(node.rel)].table_id;
    const storage::Table& t = cards_.db().table(table_id);
    const double blocks = static_cast<double>(t.num_blocks());
    const double rows = static_cast<double>(t.num_rows());
    const double sel = rows > 0.0 ? std::min(1.0, out_rows / rows) : 1.0;
    const double height = static_cast<double>(t.IndexHeight());
    switch (node.op) {
      case OpType::kSeqScan:
        return blocks * p.seq_page_cost + rows * p.cpu_tuple_cost;
      case OpType::kIndexScan:
        // Descend + fetch one heap page per matching tuple (random).
        return height * p.random_page_cost +
               sel * rows * (p.cpu_index_tuple_cost + p.random_page_cost);
      case OpType::kBitmapIndexScan:
        return height * p.random_page_cost +
               sel * rows * p.cpu_index_tuple_cost +
               std::min(blocks, sel * rows) * p.seq_page_cost +
               sel * rows * p.cpu_tuple_cost;
      default:
        break;
    }
    return 0.0;
  }
  const double l = std::max(1.0, left_rows);
  const double r = std::max(1.0, right_rows);
  switch (node.op) {
    case OpType::kHashJoin:
      return r * (p.cpu_tuple_cost + p.cpu_operator_cost) +  // build inner
             l * p.cpu_operator_cost +                       // probe outer
             out_rows * p.cpu_tuple_cost;
    case OpType::kMergeJoin:
      return (l * std::log2(l + 1.0) + r * std::log2(r + 1.0)) * p.cpu_operator_cost +
             (l + r) * p.cpu_operator_cost + out_rows * p.cpu_tuple_cost;
    case OpType::kNestedLoopJoin:
      return l * r * p.cpu_operator_cost + out_rows * p.cpu_tuple_cost;
    default:
      break;
  }
  return 0.0;
}

void CostModel::EstimatePlan(const query::Query& q, query::PlanNode* plan) const {
  cards_.EstimatePlanCardinalities(q, plan);
  plan->PostOrderMutable([&](query::PlanNode& node) {
    const double lr = node.left ? node.left->estimated.cardinality : 0.0;
    const double rr = node.right ? node.right->estimated.cardinality : 0.0;
    double cost = NodeCost(q, node, lr, rr, node.estimated.cardinality);
    if (node.left) cost += node.left->estimated.cost;
    if (node.right) cost += node.right->estimated.cost;
    node.estimated.cost = cost;
    node.estimated.runtime_ms = cost * ms_per_cost_;
  });
}

}  // namespace optimizer
}  // namespace qps
