// Copyright 2026 The QPSeeker Authors
//
// Columnar in-memory tables. This is the storage substrate the paper runs
// on PostgreSQL; we keep everything memory-resident but model pages/blocks
// so cost formulas (seq vs index access) stay meaningful.

#ifndef QPS_STORAGE_TABLE_H_
#define QPS_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace qps {
namespace storage {

/// Rows per simulated disk block, used by cost formulas.
constexpr int64_t kRowsPerBlock = 64;

/// A typed column. Integers and dictionary codes share `ints`; the string
/// dictionary is sorted so codes preserve lexicographic order.
class Column {
 public:
  Column(std::string name, DataType type) : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  int64_t size() const {
    return type_ == DataType::kFloat64 ? static_cast<int64_t>(doubles_.size())
                                       : static_cast<int64_t>(ints_.size());
  }

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }

  /// Numeric view of row `r` (value, or dictionary code for strings).
  double GetDouble(int64_t r) const {
    return type_ == DataType::kFloat64 ? doubles_[static_cast<size_t>(r)]
                                       : static_cast<double>(ints_[static_cast<size_t>(r)]);
  }
  int64_t GetInt(int64_t r) const { return ints_[static_cast<size_t>(r)]; }

  /// Installs a sorted dictionary; values in `ints_` are codes into it.
  void SetDictionary(std::vector<std::string> dict) { dict_ = std::move(dict); }
  const std::vector<std::string>& dictionary() const { return dict_; }

  /// Resolves a string to its dictionary code; -1 if absent.
  int64_t LookupDictCode(const std::string& s) const;

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }

 private:
  std::string name_;
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> dict_;
};

/// Column metadata describing key relationships (drives the join graph).
struct ColumnMeta {
  bool is_primary_key = false;
  /// Non-empty for foreign keys: referenced table/column names.
  std::string ref_table;
  std::string ref_column;
};

/// A table: columns + metadata + lazily built per-column ordered indexes.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }
  int64_t num_blocks() const {
    return (num_rows() + kRowsPerBlock - 1) / kRowsPerBlock;
  }

  /// Adds a column; returns its index.
  int AddColumn(std::string name, DataType type, ColumnMeta meta = {});

  const Column& column(int idx) const { return *columns_[static_cast<size_t>(idx)]; }
  Column* mutable_column(int idx) { return columns_[static_cast<size_t>(idx)].get(); }
  const ColumnMeta& column_meta(int idx) const { return metas_[static_cast<size_t>(idx)]; }

  /// Column index by name, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Ordered "index" on a column: row ids sorted by the column's numeric
  /// value. Built on first use and cached (models a B-tree's leaf order).
  const std::vector<uint32_t>& OrderedIndex(int col) const;

  /// B-tree height model for cost formulas: ceil(log_fanout(leaf_pages)).
  int64_t IndexHeight() const;
  int64_t IndexLeafPages() const { return std::max<int64_t>(1, num_blocks() / 4); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<ColumnMeta> metas_;
  mutable std::unordered_map<int, std::vector<uint32_t>> indexes_;
};

}  // namespace storage
}  // namespace qps

#endif  // QPS_STORAGE_TABLE_H_
