// Copyright 2026 The QPSeeker Authors
//
// Spec-driven synthetic database generation. The paper evaluates on IMDb
// (7.2 GB) and StackExchange (100 GB); we cannot ship those, so we generate
// structurally faithful stand-ins: same table/FK topology, skewed value
// distributions (Zipf), cross-column correlation, and wide cardinality
// ranges, which is what makes selectivity/join estimation hard.

#ifndef QPS_STORAGE_DATAGEN_H_
#define QPS_STORAGE_DATAGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace qps {
namespace storage {

/// How a column's values are produced.
enum class GenKind {
  kPrimaryKey,   ///< 0..n-1
  kForeignKey,   ///< parent keys sampled with Zipf skew (hot parents)
  kZipfInt,      ///< Zipf rank over [0, domain)
  kUniformInt,   ///< uniform over [0, domain)
  kNormal,       ///< N(mean, stddev) doubles
  kCategorical,  ///< dictionary-encoded string, Zipf over vocabulary
  kCorrelated,   ///< round(source * 0.5) + Zipf noise; induces correlation
};

/// Column recipe.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  GenKind gen = GenKind::kUniformInt;

  std::string ref_table;    // kForeignKey
  std::string ref_column;   // kForeignKey (defaults to "id")
  double fk_skew = 1.05;    // kForeignKey Zipf exponent; <=0 means uniform

  int64_t domain = 100;     // kZipfInt / kUniformInt / kCategorical vocab size
  double zipf_s = 1.1;      // kZipfInt / kCategorical skew
  double mean = 0.0;        // kNormal
  double stddev = 1.0;      // kNormal
  std::string corr_source;  // kCorrelated: source column in the same table
  double corr_noise = 4.0;  // kCorrelated: noise domain
};

/// Table recipe; rows = max(2, rel_rows * base_rows).
struct TableSpec {
  std::string name;
  double rel_rows = 1.0;
  std::vector<ColumnSpec> columns;
};

/// Whole-database recipe.
struct DatabaseSpec {
  std::string name;
  std::vector<TableSpec> tables;
};

/// Materializes a database from a spec. Parent tables must precede children
/// in the spec (FKs resolve against already-built tables).
StatusOr<std::unique_ptr<Database>> BuildDatabase(const DatabaseSpec& spec,
                                                  int64_t base_rows, Rng* rng);

}  // namespace storage
}  // namespace qps

#endif  // QPS_STORAGE_DATAGEN_H_
