// Copyright 2026 The QPSeeker Authors

#include "storage/database.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace qps {
namespace storage {

std::string JoinEdge::DebugString(const Database& db) const {
  return StrFormat("%s.%s = %s.%s", db.table(left_table).name().c_str(),
                   db.table(left_table).column(left_column).name().c_str(),
                   db.table(right_table).name().c_str(),
                   db.table(right_table).column(right_column).name().c_str());
}

int Database::AddTable(std::unique_ptr<Table> table) {
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

int Database::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

void Database::BuildJoinGraph() {
  join_edges_.clear();
  for (int t = 0; t < num_tables(); ++t) {
    const Table& tab = table(t);
    for (int c = 0; c < tab.num_columns(); ++c) {
      const ColumnMeta& meta = tab.column_meta(c);
      if (meta.ref_table.empty()) continue;
      const int rt = TableIndex(meta.ref_table);
      QPS_CHECK(rt >= 0) << "FK references unknown table " << meta.ref_table;
      const int rc = table(rt).ColumnIndex(meta.ref_column);
      QPS_CHECK(rc >= 0) << "FK references unknown column " << meta.ref_column;
      join_edges_.push_back(JoinEdge{t, c, rt, rc});
    }
  }
}

int Database::FindJoinEdge(int ta, int ca, int tb, int cb) const {
  for (size_t i = 0; i < join_edges_.size(); ++i) {
    const JoinEdge& e = join_edges_[i];
    if ((e.left_table == ta && e.left_column == ca && e.right_table == tb &&
         e.right_column == cb) ||
        (e.left_table == tb && e.left_column == cb && e.right_table == ta &&
         e.right_column == ca)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int64_t Database::TotalRows() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

}  // namespace storage
}  // namespace qps
