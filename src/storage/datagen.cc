// Copyright 2026 The QPSeeker Authors

#include "storage/datagen.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace qps {
namespace storage {

namespace {

/// Synthetic vocabulary: "v000", "v001", ... (sorted, so dictionary codes
/// preserve lexicographic order).
std::vector<std::string> MakeVocabulary(int64_t size) {
  std::vector<std::string> vocab;
  vocab.reserve(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) {
    vocab.push_back(StrFormat("v%04d", static_cast<int>(i)));
  }
  return vocab;
}

Status FillColumn(const ColumnSpec& spec, int64_t rows, const Database& db,
                  Table* table, Column* col, Rng* rng) {
  switch (spec.gen) {
    case GenKind::kPrimaryKey:
      for (int64_t r = 0; r < rows; ++r) col->AppendInt(r);
      return Status::OK();

    case GenKind::kForeignKey: {
      const int pt = db.TableIndex(spec.ref_table);
      if (pt < 0) {
        return Status::InvalidArgument("FK parent not built yet: " + spec.ref_table);
      }
      const int64_t parent_rows = db.table(pt).num_rows();
      if (parent_rows <= 0) return Status::InvalidArgument("empty FK parent");
      if (spec.fk_skew > 0.0) {
        ZipfDistribution zipf(static_cast<uint64_t>(parent_rows), spec.fk_skew);
        // Map hot ranks to pseudo-random parent ids so heat is not correlated
        // with key order (mirrors real-world popularity).
        for (int64_t r = 0; r < rows; ++r) {
          const uint64_t rank = zipf.Sample(rng) - 1;
          const int64_t parent =
              static_cast<int64_t>((rank * 2654435761ULL) % static_cast<uint64_t>(parent_rows));
          col->AppendInt(parent);
        }
      } else {
        for (int64_t r = 0; r < rows; ++r) {
          col->AppendInt(static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(parent_rows))));
        }
      }
      return Status::OK();
    }

    case GenKind::kZipfInt: {
      ZipfDistribution zipf(static_cast<uint64_t>(std::max<int64_t>(1, spec.domain)),
                            spec.zipf_s);
      for (int64_t r = 0; r < rows; ++r) {
        col->AppendInt(static_cast<int64_t>(zipf.Sample(rng)) - 1);
      }
      return Status::OK();
    }

    case GenKind::kUniformInt:
      for (int64_t r = 0; r < rows; ++r) {
        col->AppendInt(static_cast<int64_t>(rng->UniformInt(
            static_cast<uint64_t>(std::max<int64_t>(1, spec.domain)))));
      }
      return Status::OK();

    case GenKind::kNormal:
      for (int64_t r = 0; r < rows; ++r) {
        col->AppendDouble(rng->Normal(spec.mean, spec.stddev));
      }
      return Status::OK();

    case GenKind::kCategorical: {
      const int64_t vocab_size = std::max<int64_t>(1, spec.domain);
      col->SetDictionary(MakeVocabulary(vocab_size));
      ZipfDistribution zipf(static_cast<uint64_t>(vocab_size), spec.zipf_s);
      for (int64_t r = 0; r < rows; ++r) {
        col->AppendInt(static_cast<int64_t>(zipf.Sample(rng)) - 1);
      }
      return Status::OK();
    }

    case GenKind::kCorrelated: {
      const int src = table->ColumnIndex(spec.corr_source);
      if (src < 0) {
        return Status::InvalidArgument("correlation source not built yet: " +
                                       spec.corr_source);
      }
      const Column& source = table->column(src);
      ZipfDistribution noise(
          static_cast<uint64_t>(std::max(2.0, spec.corr_noise)), 1.2);
      for (int64_t r = 0; r < rows; ++r) {
        const int64_t base = static_cast<int64_t>(std::llround(source.GetDouble(r) * 0.5));
        col->AppendInt(base + static_cast<int64_t>(noise.Sample(rng)) - 1);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled GenKind");
}

}  // namespace

StatusOr<std::unique_ptr<Database>> BuildDatabase(const DatabaseSpec& spec,
                                                  int64_t base_rows, Rng* rng) {
  auto db = std::make_unique<Database>(spec.name);
  for (const TableSpec& tspec : spec.tables) {
    const int64_t rows = std::max<int64_t>(
        2, static_cast<int64_t>(std::llround(tspec.rel_rows * static_cast<double>(base_rows))));
    auto table = std::make_unique<Table>(tspec.name);
    for (const ColumnSpec& cspec : tspec.columns) {
      ColumnMeta meta;
      meta.is_primary_key = cspec.gen == GenKind::kPrimaryKey;
      if (cspec.gen == GenKind::kForeignKey) {
        meta.ref_table = cspec.ref_table;
        meta.ref_column = cspec.ref_column.empty() ? "id" : cspec.ref_column;
      }
      const int idx = table->AddColumn(cspec.name, cspec.type, meta);
      QPS_RETURN_IF_ERROR(
          FillColumn(cspec, rows, *db, table.get(), table->mutable_column(idx), rng));
    }
    db->AddTable(std::move(table));
  }
  db->BuildJoinGraph();
  return db;
}

}  // namespace storage
}  // namespace qps
