// Copyright 2026 The QPSeeker Authors

#include "storage/schemas.h"

namespace qps {
namespace storage {

namespace {

ColumnSpec Pk() {
  ColumnSpec c;
  c.name = "id";
  c.gen = GenKind::kPrimaryKey;
  return c;
}

ColumnSpec Fk(const std::string& name, const std::string& parent, double skew = 1.05) {
  ColumnSpec c;
  c.name = name;
  c.gen = GenKind::kForeignKey;
  c.ref_table = parent;
  c.ref_column = "id";
  c.fk_skew = skew;
  return c;
}

ColumnSpec Zipf(const std::string& name, int64_t domain, double s = 1.1) {
  ColumnSpec c;
  c.name = name;
  c.gen = GenKind::kZipfInt;
  c.domain = domain;
  c.zipf_s = s;
  return c;
}

ColumnSpec Uni(const std::string& name, int64_t domain) {
  ColumnSpec c;
  c.name = name;
  c.gen = GenKind::kUniformInt;
  c.domain = domain;
  return c;
}

ColumnSpec Cat(const std::string& name, int64_t vocab, double s = 1.2) {
  ColumnSpec c;
  c.name = name;
  c.type = DataType::kString;
  c.gen = GenKind::kCategorical;
  c.domain = vocab;
  c.zipf_s = s;
  return c;
}

ColumnSpec Corr(const std::string& name, const std::string& source, double noise = 6.0) {
  ColumnSpec c;
  c.name = name;
  c.gen = GenKind::kCorrelated;
  c.corr_source = source;
  c.corr_noise = noise;
  return c;
}

TableSpec T(const std::string& name, double rel, std::vector<ColumnSpec> cols) {
  TableSpec t;
  t.name = name;
  t.rel_rows = rel;
  t.columns = std::move(cols);
  return t;
}

}  // namespace

DatabaseSpec ImdbLikeSpec() {
  DatabaseSpec spec;
  spec.name = "imdb";
  // Dimension tables first (FK parents), fact tables after. Relative sizes
  // roughly follow JOB's IMDb snapshot (title : cast_info ~ 1 : 14).
  spec.tables = {
      T("kind_type", 0.0004, {Pk(), Cat("kind", 7)}),
      T("info_type", 0.004, {Pk(), Cat("info", 113)}),
      T("company_type", 0.0002, {Pk(), Cat("kind", 4)}),
      T("comp_cast_type", 0.0002, {Pk(), Cat("kind", 4)}),
      T("link_type", 0.0006, {Pk(), Cat("link", 18)}),
      T("role_type", 0.0005, {Pk(), Cat("role", 12)}),
      T("company_name", 0.09, {Pk(), Cat("country_code", 130, 1.4), Zipf("name_hash", 5000)}),
      T("keyword", 0.05, {Pk(), Zipf("keyword_hash", 20000, 0.9)}),
      T("name", 1.6, {Pk(), Cat("gender", 3, 0.8), Zipf("name_pcode", 1000)}),
      T("char_name", 1.2, {Pk(), Zipf("name_pcode", 1000)}),
      T("title", 1.0,
        {Pk(), Fk("kind_id", "kind_type", 1.3), Uni("production_year", 130),
         Corr("phonetic_code", "production_year"), Zipf("season_nr", 40, 1.3)}),
      T("aka_name", 0.35, {Pk(), Fk("person_id", "name")}),
      T("aka_title", 0.15, {Pk(), Fk("movie_id", "title"), Uni("production_year", 130)}),
      T("cast_info", 14.0,
        {Pk(), Fk("movie_id", "title", 1.1), Fk("person_id", "name", 1.05),
         Fk("person_role_id", "char_name", 1.05), Fk("role_id", "role_type", 1.2),
         Zipf("nr_order", 80, 1.4)}),
      T("complete_cast", 0.05,
        {Pk(), Fk("movie_id", "title"), Fk("subject_id", "comp_cast_type", 1.0),
         Fk("status_id", "comp_cast_type", 1.0)}),
      T("movie_companies", 1.0,
        {Pk(), Fk("movie_id", "title", 1.1), Fk("company_id", "company_name", 1.3),
         Fk("company_type_id", "company_type", 1.1)}),
      T("movie_info", 5.7,
        {Pk(), Fk("movie_id", "title", 1.05), Fk("info_type_id", "info_type", 1.3),
         Zipf("info_hash", 4000, 1.1)}),
      T("movie_info_idx", 0.5,
        {Pk(), Fk("movie_id", "title", 1.05), Fk("info_type_id", "info_type", 1.5),
         Zipf("info_val", 100, 1.0)}),
      T("movie_keyword", 1.8,
        {Pk(), Fk("movie_id", "title", 1.15), Fk("keyword_id", "keyword", 1.2)}),
      T("movie_link", 0.012,
        {Pk(), Fk("movie_id", "title"), Fk("linked_movie_id", "title"),
         Fk("link_type_id", "link_type", 1.0)}),
      T("person_info", 1.1,
        {Pk(), Fk("person_id", "name", 1.1), Fk("info_type_id", "info_type", 1.4)}),
  };
  return spec;
}

DatabaseSpec StackLikeSpec() {
  DatabaseSpec spec;
  spec.name = "stack";
  spec.tables = {
      T("site", 0.001, {Pk(), Cat("site_name", 170, 1.1)}),
      T("account", 0.8, {Pk(), Zipf("website_hash", 2000, 1.0)}),
      T("so_user", 1.0,
        {Pk(), Fk("site_id", "site", 1.2), Fk("account_id", "account", 1.0),
         Zipf("reputation", 10000, 1.5), Corr("upvotes", "reputation")}),
      T("tag", 0.02, {Pk(), Fk("site_id", "site", 1.1), Zipf("name_hash", 5000, 0.9)}),
      T("question", 2.0,
        {Pk(), Fk("site_id", "site", 1.2), Fk("owner_user_id", "so_user", 1.3),
         Zipf("score", 200, 1.6), Corr("view_count", "score", 20.0),
         Uni("creation_year", 15)}),
      T("answer", 3.0,
        {Pk(), Fk("site_id", "site", 1.2), Fk("question_id", "question", 1.15),
         Fk("owner_user_id", "so_user", 1.3), Zipf("score", 150, 1.7)}),
      T("comment", 4.0,
        {Pk(), Fk("site_id", "site", 1.2), Fk("post_id", "question", 1.2),
         Fk("user_id", "so_user", 1.25), Zipf("score", 50, 1.8)}),
      T("tag_question", 3.5,
        {Pk(), Fk("site_id", "site", 1.2), Fk("tag_id", "tag", 1.3),
         Fk("question_id", "question", 1.05)}),
      T("badge", 1.5,
        {Pk(), Fk("site_id", "site", 1.2), Fk("user_id", "so_user", 1.35),
         Cat("name", 400, 1.3)}),
      T("post_link", 0.15,
        {Pk(), Fk("site_id", "site", 1.1), Fk("post_id_from", "question", 1.0),
         Fk("post_id_to", "question", 1.2)}),
  };
  return spec;
}

DatabaseSpec ToySpec() {
  DatabaseSpec spec;
  spec.name = "toy";
  spec.tables = {
      T("a", 1.0, {Pk(), Zipf("a2", 20, 1.2)}),
      T("b", 2.0, {Pk(), Fk("b1", "a", 1.1), Zipf("b3", 10, 1.0)}),
      T("c", 1.5, {Pk(), Fk("c1", "b", 1.1), Uni("c2", 50)}),
  };
  return spec;
}

}  // namespace storage
}  // namespace qps
