// Copyright 2026 The QPSeeker Authors
//
// The catalog: a named set of tables plus the derived join graph (every
// FK -> PK pair), which defines the one-hot join vocabulary used by the
// query/plan encoders (as in MSCN).

#ifndef QPS_STORAGE_DATABASE_H_
#define QPS_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace qps {
namespace storage {

/// A joinable column pair in the schema (FK side first).
struct JoinEdge {
  int left_table;   ///< table index in the database
  int left_column;  ///< column index within left table
  int right_table;
  int right_column;

  std::string DebugString(const class Database& db) const;
};

/// An immutable collection of tables with the schema-level join graph.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a table; returns its index.
  int AddTable(std::unique_ptr<Table> table);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int idx) const { return *tables_[static_cast<size_t>(idx)]; }
  Table* mutable_table(int idx) { return tables_[static_cast<size_t>(idx)].get(); }

  /// Table index by name, or -1.
  int TableIndex(const std::string& name) const;

  /// Rebuilds the join graph from FK metadata. Call after loading tables.
  void BuildJoinGraph();

  /// All schema join edges; index into this vector is the join's one-hot id.
  const std::vector<JoinEdge>& join_edges() const { return join_edges_; }

  /// Edge id for (ta.ca = tb.cb) in either orientation, or -1.
  int FindJoinEdge(int ta, int ca, int tb, int cb) const;

  /// Total number of rows across tables (reporting only).
  int64_t TotalRows() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<JoinEdge> join_edges_;
};

}  // namespace storage
}  // namespace qps

#endif  // QPS_STORAGE_DATABASE_H_
