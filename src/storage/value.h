// Copyright 2026 The QPSeeker Authors
//
// Scalar values and data types for the storage engine.

#ifndef QPS_STORAGE_VALUE_H_
#define QPS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>

namespace qps {
namespace storage {

/// Column data types. Strings are dictionary-encoded with codes that
/// preserve lexicographic order, so range predicates work uniformly.
enum class DataType { kInt64, kFloat64, kString };

const char* DataTypeName(DataType t);

/// A typed scalar used in predicates and generated data.
struct Value {
  DataType type = DataType::kInt64;
  int64_t i = 0;      ///< kInt64 payload, or dictionary code for kString
  double d = 0.0;     ///< kFloat64 payload
  std::string s;      ///< kString payload (source form)

  static Value Int(int64_t v) {
    Value out;
    out.type = DataType::kInt64;
    out.i = v;
    return out;
  }
  static Value Float(double v) {
    Value out;
    out.type = DataType::kFloat64;
    out.d = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type = DataType::kString;
    out.s = std::move(v);
    return out;
  }

  /// Numeric view used by statistics and comparisons (dict code for strings).
  double AsDouble() const {
    switch (type) {
      case DataType::kInt64:
        return static_cast<double>(i);
      case DataType::kFloat64:
        return d;
      case DataType::kString:
        return static_cast<double>(i);
    }
    return 0.0;
  }

  std::string ToString() const;
};

/// Comparison operators supported in predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

/// Applies `op` to numeric representations.
bool CompareDoubles(double lhs, CompareOp op, double rhs);

}  // namespace storage
}  // namespace qps

#endif  // QPS_STORAGE_VALUE_H_
