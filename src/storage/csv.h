// Copyright 2026 The QPSeeker Authors
//
// CSV import/export so users can run QPSeeker over their own data instead
// of the synthetic generators. Exported files round-trip exactly.
//
// Format: first line is a header of `name:type[:pk|:fk(table.column)]`
// fields; values are comma-separated, strings quoted with doubled quotes.

#ifndef QPS_STORAGE_CSV_H_
#define QPS_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace qps {
namespace storage {

/// Writes `table` (data + schema header) to `path`.
Status ExportTableCsv(const Table& table, const std::string& path);

/// Reads a table written by ExportTableCsv (or hand-authored in the same
/// format). String columns are dictionary-encoded on load with a sorted
/// dictionary, exactly like generated tables.
StatusOr<std::unique_ptr<Table>> ImportTableCsv(const std::string& table_name,
                                                const std::string& path);

}  // namespace storage
}  // namespace qps

#endif  // QPS_STORAGE_CSV_H_
