// Copyright 2026 The QPSeeker Authors

#include "storage/table.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qps {
namespace storage {

int64_t Column::LookupDictCode(const std::string& s) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), s);
  if (it == dict_.end() || *it != s) return -1;
  return static_cast<int64_t>(it - dict_.begin());
}

int Table::AddColumn(std::string name, DataType type, ColumnMeta meta) {
  columns_.push_back(std::make_unique<Column>(std::move(name), type));
  metas_.push_back(std::move(meta));
  return static_cast<int>(columns_.size()) - 1;
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<uint32_t>& Table::OrderedIndex(int col) const {
  auto it = indexes_.find(col);
  if (it != indexes_.end()) return it->second;
  QPS_CHECK(col >= 0 && col < num_columns()) << "bad column index";
  std::vector<uint32_t> perm(static_cast<size_t>(num_rows()));
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
  const Column& c = column(col);
  std::stable_sort(perm.begin(), perm.end(), [&c](uint32_t a, uint32_t b) {
    return c.GetDouble(a) < c.GetDouble(b);
  });
  return indexes_.emplace(col, std::move(perm)).first->second;
}

int64_t Table::IndexHeight() const {
  const double leaf_pages = static_cast<double>(IndexLeafPages());
  constexpr double kFanout = 64.0;
  return std::max<int64_t>(1, static_cast<int64_t>(
                                  std::ceil(std::log(leaf_pages + 1.0) /
                                            std::log(kFanout))) +
                                  1);
}

}  // namespace storage
}  // namespace qps
