// Copyright 2026 The QPSeeker Authors
//
// Ready-made database specs used throughout the evaluation:
//  - ImdbLikeSpec:  21 tables mirroring the IMDb schema of the Join Order
//    Benchmark (title, cast_info, movie_info, ... with the real FK topology).
//  - StackLikeSpec: 10 tables mirroring the StackExchange schema used by Bao.
//  - ToySpec:       the 3-table a/b/c schema from the paper's running example
//    (Figure 6): "select * from a, b, c where a.a1=b.b1 and b.b2=c.c1 ...".

#ifndef QPS_STORAGE_SCHEMAS_H_
#define QPS_STORAGE_SCHEMAS_H_

#include "storage/datagen.h"

namespace qps {
namespace storage {

/// IMDb-like schema (Join Order Benchmark topology). `base_rows` scales the
/// anchor table `title`; other tables keep JOB-like relative sizes.
DatabaseSpec ImdbLikeSpec();

/// StackExchange-like schema (Bao's Stack benchmark topology).
DatabaseSpec StackLikeSpec();

/// The paper's running-example schema: tables a, b, c with a.a1=b.b1,
/// b.b2=c.c1 joins and a filterable a.a2.
DatabaseSpec ToySpec();

}  // namespace storage
}  // namespace qps

#endif  // QPS_STORAGE_SCHEMAS_H_
