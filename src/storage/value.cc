// Copyright 2026 The QPSeeker Authors

#include "storage/value.h"

#include "util/string_util.h"

namespace qps {
namespace storage {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type) {
    case DataType::kInt64:
      return std::to_string(i);
    case DataType::kFloat64:
      return StrFormat("%g", d);
    case DataType::kString:
      return "'" + s + "'";
  }
  return "?";
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareDoubles(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace storage
}  // namespace qps
