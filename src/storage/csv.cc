// Copyright 2026 The QPSeeker Authors

#include "storage/csv.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "util/string_util.h"

namespace qps {
namespace storage {

namespace {

std::string QuoteCsv(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honoring quoted fields.
StatusOr<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote: " + line);
  fields.push_back(cur);
  return fields;
}

std::string HeaderField(const Table& table, int c) {
  std::string field = table.column(c).name();
  field += ":";
  field += DataTypeName(table.column(c).type());
  const ColumnMeta& meta = table.column_meta(c);
  if (meta.is_primary_key) {
    field += ":pk";
  } else if (!meta.ref_table.empty()) {
    field += ":fk(" + meta.ref_table + "." + meta.ref_column + ")";
  }
  return field;
}

}  // namespace

Status ExportTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  std::vector<std::string> header;
  for (int c = 0; c < table.num_columns(); ++c) header.push_back(HeaderField(table, c));
  out << StrJoin(header, ",") << "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> fields;
    for (int c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      switch (col.type()) {
        case DataType::kInt64:
          fields.push_back(std::to_string(col.GetInt(r)));
          break;
        case DataType::kFloat64:
          fields.push_back(StrFormat("%.17g", col.GetDouble(r)));
          break;
        case DataType::kString:
          fields.push_back(
              QuoteCsv(col.dictionary()[static_cast<size_t>(col.GetInt(r))]));
          break;
      }
    }
    out << StrJoin(fields, ",") << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<Table>> ImportTableCsv(const std::string& table_name,
                                                const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::InvalidArgument("empty file: " + path);

  auto table = std::make_unique<Table>(table_name);
  QPS_ASSIGN_OR_RETURN(auto header, SplitCsvLine(line));
  std::vector<DataType> types;
  for (const std::string& field : header) {
    auto parts = StrSplit(field, ':');
    if (parts.size() < 2) {
      return Status::InvalidArgument("bad header field: " + field);
    }
    DataType type;
    if (parts[1] == "int64") {
      type = DataType::kInt64;
    } else if (parts[1] == "float64") {
      type = DataType::kFloat64;
    } else if (parts[1] == "string") {
      type = DataType::kString;
    } else {
      return Status::InvalidArgument("unknown type: " + parts[1]);
    }
    ColumnMeta meta;
    if (parts.size() >= 3) {
      if (parts[2] == "pk") {
        meta.is_primary_key = true;
      } else if (StartsWith(parts[2], "fk(")) {
        // fk(table.column) — note ':' already split; reassemble remainder.
        std::string ref = field.substr(field.find("fk(") + 3);
        if (ref.empty() || ref.back() != ')') {
          return Status::InvalidArgument("bad fk annotation: " + field);
        }
        ref.pop_back();
        const size_t dot = ref.find('.');
        if (dot == std::string::npos) {
          return Status::InvalidArgument("bad fk target: " + field);
        }
        meta.ref_table = ref.substr(0, dot);
        meta.ref_column = ref.substr(dot + 1);
      }
    }
    table->AddColumn(parts[0], type, meta);
    types.push_back(type);
  }

  // Parse rows; string values buffered until the dictionary is known.
  std::vector<std::vector<std::string>> string_values(types.size());
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StrTrim(line).empty()) continue;
    QPS_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line));
    if (fields.size() != types.size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected %zu fields, got %zu", path.c_str(), line_no,
                    types.size(), fields.size()));
    }
    for (size_t c = 0; c < types.size(); ++c) {
      Column* col = table->mutable_column(static_cast<int>(c));
      switch (types[c]) {
        case DataType::kInt64:
          try {
            col->AppendInt(std::stoll(fields[c]));
          } catch (...) {
            return Status::InvalidArgument(
                StrFormat("%s:%d: bad int '%s'", path.c_str(), line_no,
                          fields[c].c_str()));
          }
          break;
        case DataType::kFloat64:
          try {
            col->AppendDouble(std::stod(fields[c]));
          } catch (...) {
            return Status::InvalidArgument(
                StrFormat("%s:%d: bad float '%s'", path.c_str(), line_no,
                          fields[c].c_str()));
          }
          break;
        case DataType::kString:
          string_values[c].push_back(fields[c]);
          break;
      }
    }
  }

  // Dictionary-encode string columns with sorted dictionaries.
  for (size_t c = 0; c < types.size(); ++c) {
    if (types[c] != DataType::kString) continue;
    std::vector<std::string> dict = string_values[c];
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    Column* col = table->mutable_column(static_cast<int>(c));
    col->SetDictionary(dict);
    for (const std::string& v : string_values[c]) {
      col->AppendInt(col->LookupDictCode(v));
    }
  }
  return table;
}

}  // namespace storage
}  // namespace qps
