// Copyright 2026 The QPSeeker Authors

#include "encoder/query_encoder.h"

#include "util/trace.h"

namespace qps {
namespace encoder {

using nn::Tensor;
using nn::Var;

QueryEncoder::QueryEncoder(const storage::Database& db, const EncoderConfig& config,
                           Rng* rng)
    : db_(db),
      config_(config),
      num_tables_(db.num_tables()),
      num_joins_(static_cast<int>(db.join_edges().size())) {
  rel_mlp_ = std::make_unique<nn::Mlp>(num_tables_, config_.set_hidden,
                                       config_.set_out, config_.set_hidden_layers,
                                       rng, nn::Activation::kRelu,
                                       nn::Activation::kRelu, "rel");
  join_mlp_ = std::make_unique<nn::Mlp>(join_onehot_dim(), config_.set_hidden,
                                        config_.set_out, config_.set_hidden_layers,
                                        rng, nn::Activation::kRelu,
                                        nn::Activation::kRelu, "join");
  RegisterChild("rel", rel_mlp_.get());
  RegisterChild("join", join_mlp_.get());
}

Var QueryEncoder::Encode(const query::Query& q) const {
  QPS_TRACE_SPAN("encode.query");
  // Relation set: one row per relation instance, one-hot by table id.
  const int nrel = std::max(1, q.num_relations());
  Tensor rel(nrel, num_tables_);
  Tensor rel_mask(nrel, 1);
  for (int r = 0; r < q.num_relations(); ++r) {
    rel(r, q.relations[static_cast<size_t>(r)].table_id) = 1.0f;
    rel_mask(r, 0) = 1.0f;
  }
  Var rel_pooled =
      nn::MaskedMeanRows(rel_mlp_->Forward(nn::Constant(rel)), rel_mask);

  // Join set: one row per join predicate, one-hot by schema edge (the last
  // bucket collects ad-hoc joins not in the FK graph). Queries without
  // joins pool to zero through an all-zero mask (the paper feeds an all-
  // zeros matrix).
  const int njoin = std::max(1, static_cast<int>(q.joins.size()));
  Tensor join(njoin, join_onehot_dim());
  Tensor join_mask(njoin, 1);
  for (size_t j = 0; j < q.joins.size(); ++j) {
    const int edge = q.joins[j].schema_edge;
    join(static_cast<int64_t>(j), edge >= 0 ? edge : num_joins_) = 1.0f;
    join_mask(static_cast<int64_t>(j), 0) = 1.0f;
  }
  Var join_pooled =
      nn::MaskedMeanRows(join_mlp_->Forward(nn::Constant(join)), join_mask);

  return nn::ConcatCols({rel_pooled, join_pooled});
}

void QueryEncoder::EncodeTensor(const query::Query& q, Tensor* out) const {
  QPS_TRACE_SPAN("encode.query");
  const int out_cols = out_dim();
  if (out->rows() != 1 || out->cols() != out_cols) *out = Tensor(1, out_cols);

  // Masked mean of mlp(rows): identical pooling to nn::MaskedMeanRows.
  const auto pool = [](const Tensor& rows, int valid, float* dst, int64_t width) {
    const float inv = valid > 0 ? 1.0f / static_cast<float>(valid) : 0.0f;
    for (int64_t j = 0; j < width; ++j) dst[j] = 0.0f;
    for (int r = 0; r < valid; ++r) {
      const float* src = rows.data() + r * width;
      for (int64_t j = 0; j < width; ++j) dst[j] += src[j] * inv;
    }
  };

  const int nrel = std::max(1, q.num_relations());
  Tensor rel(nrel, num_tables_);
  for (int r = 0; r < q.num_relations(); ++r) {
    rel(r, q.relations[static_cast<size_t>(r)].table_id) = 1.0f;
  }
  Tensor rel_out;
  rel_mlp_->ForwardTensor(rel, &rel_out);
  pool(rel_out, q.num_relations(), out->data(), config_.set_out);

  const int njoin = std::max(1, static_cast<int>(q.joins.size()));
  Tensor join(njoin, join_onehot_dim());
  for (size_t j = 0; j < q.joins.size(); ++j) {
    const int edge = q.joins[j].schema_edge;
    join(static_cast<int64_t>(j), edge >= 0 ? edge : num_joins_) = 1.0f;
  }
  Tensor join_out;
  join_mlp_->ForwardTensor(join, &join_out);
  pool(join_out, static_cast<int>(q.joins.size()), out->data() + config_.set_out,
       config_.set_out);
}

}  // namespace encoder
}  // namespace qps
