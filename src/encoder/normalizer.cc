// Copyright 2026 The QPSeeker Authors

#include "encoder/normalizer.h"

#include <algorithm>
#include <cmath>

namespace qps {
namespace encoder {

LabelNormalizer::LabelNormalizer() { log_max_.fill(1.0); }

void LabelNormalizer::Observe(const query::PlanNode& plan) {
  plan.PostOrder([this](const query::PlanNode& node) {
    log_max_[kCardinality] =
        std::max(log_max_[kCardinality], std::log1p(std::max(0.0, node.actual.cardinality)));
    log_max_[kCost] = std::max(log_max_[kCost], std::log1p(std::max(0.0, node.actual.cost)));
    log_max_[kRuntime] =
        std::max(log_max_[kRuntime], std::log1p(std::max(0.0, node.actual.runtime_ms)));
  });
}

void LabelNormalizer::Finalize() { finalized_ = true; }

std::array<float, 3> LabelNormalizer::Normalize(const query::NodeStats& stats) const {
  return {
      static_cast<float>(std::log1p(std::max(0.0, stats.cardinality)) / log_max_[0]),
      static_cast<float>(std::log1p(std::max(0.0, stats.cost)) / log_max_[1]),
      static_cast<float>(std::log1p(std::max(0.0, stats.runtime_ms)) / log_max_[2]),
  };
}

query::NodeStats LabelNormalizer::Denormalize(float card, float cost,
                                              float runtime) const {
  query::NodeStats out;
  out.cardinality = std::expm1(std::max(0.0, static_cast<double>(card)) * log_max_[0]);
  out.cost = std::expm1(std::max(0.0, static_cast<double>(cost)) * log_max_[1]);
  out.runtime_ms = std::expm1(std::max(0.0, static_cast<double>(runtime)) * log_max_[2]);
  return out;
}

}  // namespace encoder
}  // namespace qps
