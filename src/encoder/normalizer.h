// Copyright 2026 The QPSeeker Authors
//
// Target normalization. Cardinalities, costs and runtimes span many orders
// of magnitude; QPSeeker (like MSCN and friends) learns them in normalized
// log space: y = log1p(x) / log1p(max_x), fit on the training split.

#ifndef QPS_ENCODER_NORMALIZER_H_
#define QPS_ENCODER_NORMALIZER_H_

#include <array>

#include "query/plan.h"

namespace qps {
namespace encoder {

/// Indices into the per-node target triple.
enum TargetIndex { kCardinality = 0, kCost = 1, kRuntime = 2 };

class LabelNormalizer {
 public:
  LabelNormalizer();

  /// Expands the fitted range with one labeled plan (all nodes).
  void Observe(const query::PlanNode& plan);

  /// Must be called after all Observe() calls, before Normalize().
  void Finalize();

  /// Normalized triple in [0, ~1] from raw node stats.
  std::array<float, 3> Normalize(const query::NodeStats& stats) const;

  /// Raw stats from a normalized triple (inverse transform).
  query::NodeStats Denormalize(float card, float cost, float runtime) const;

  bool finalized() const { return finalized_; }
  double log_max(int target) const { return log_max_[static_cast<size_t>(target)]; }

 private:
  std::array<double, 3> log_max_;
  bool finalized_ = false;
};

}  // namespace encoder
}  // namespace qps

#endif  // QPS_ENCODER_NORMALIZER_H_
