// Copyright 2026 The QPSeeker Authors
//
// QPAttention (paper §4.3): multi-head cross-attention between the query
// embedding and the plan's node output vectors, scoring which plan nodes
// impact the query's estimates the most. For single-operator plans (no
// joins) attention adds nothing and the combination degenerates to plain
// concatenation, exactly as the paper specifies.

#ifndef QPS_ENCODER_QP_ATTENTION_H_
#define QPS_ENCODER_QP_ATTENTION_H_

#include <memory>

#include "encoder/plan_encoder.h"

namespace qps {
namespace encoder {

class QpAttention : public nn::Module {
 public:
  QpAttention(int query_dim, int node_dim, const EncoderConfig& config, Rng* rng);

  /// QEP embedding: 1 x out_dim().
  nn::Var Combine(const nn::Var& query_emb, const PlanEncoder::Output& plan) const;

  /// Autograd-free inference path over a (num_nodes x node_dim) node
  /// matrix; same degenerate-concat rule for single-node plans.
  void CombineTensor(const nn::Tensor& query_emb, const nn::Tensor& node_matrix,
                     nn::Tensor* out) const;

  /// Output width == query embedding + plan node vector (paper: "a vector
  /// with size equal to the sum of the query and plan embedding vectors").
  int out_dim() const { return query_dim_ + node_dim_; }

  /// Per-head attention scores of the last multi-node Combine (heads x n).
  /// By value: the underlying buffer is republished by every forward, which
  /// may run concurrently on a shared model (see MultiHeadCrossAttention).
  nn::Tensor last_scores() const { return attn_->last_scores(); }

 private:
  int query_dim_;
  int node_dim_;
  std::unique_ptr<nn::MultiHeadCrossAttention> attn_;
};

}  // namespace encoder
}  // namespace qps

#endif  // QPS_ENCODER_QP_ATTENTION_H_
