// Copyright 2026 The QPSeeker Authors
//
// Query encoder (paper §4.1, following MSCN): the relation set T_q and join
// set J_q are one-hot encoded against the schema, passed through per-set
// MLPs, mean-pooled with a presence mask, and concatenated into the query
// embedding vector. Set-based (not query-specific) so queries sharing
// relation/join combinations land near each other.

#ifndef QPS_ENCODER_QUERY_ENCODER_H_
#define QPS_ENCODER_QUERY_ENCODER_H_

#include <memory>

#include "nn/layers.h"
#include "query/query.h"

namespace qps {
namespace encoder {

/// Width configuration shared by the encoders. The paper's sizes (§6.2):
/// set MLPs 256/256 with 5 hidden layers, plan node output 950, 4 attention
/// heads of 256. `Ci()` scales these down for single-core runs.
struct EncoderConfig {
  int set_hidden = 64;
  int set_out = 32;           ///< per-set output; query embedding = 2x this
  int set_hidden_layers = 2;  ///< paper: 5
  int node_out = 64;          ///< plan node output vector; last 3 dims = stats
  int attn_heads = 4;
  int attn_head_dim = 16;
  /// Ablation: when false, the plan encoder zeroes the TabSketch data
  /// representations (queries-only model; bench_ablation_tabert).
  bool use_data_repr = true;

  static EncoderConfig Ci() { return EncoderConfig{}; }
  static EncoderConfig Smoke() { return EncoderConfig{16, 8, 1, 24, 2, 8}; }
  static EncoderConfig Paper() { return EncoderConfig{256, 256, 5, 950, 4, 256}; }
};

class QueryEncoder : public nn::Module {
 public:
  QueryEncoder(const storage::Database& db, const EncoderConfig& config, Rng* rng);

  /// Query embedding vector, 1 x out_dim().
  nn::Var Encode(const query::Query& q) const;

  /// Autograd-free inference path; identical math, writes 1 x out_dim()
  /// into *out. Computed once per planning run and reused for every
  /// candidate plan of the query.
  void EncodeTensor(const query::Query& q, nn::Tensor* out) const;

  int out_dim() const { return 2 * config_.set_out; }

  /// One-hot widths (N tables, M schema joins + 1 ad-hoc bucket).
  int relation_onehot_dim() const { return num_tables_; }
  int join_onehot_dim() const { return num_joins_ + 1; }

 private:
  const storage::Database& db_;
  EncoderConfig config_;
  int num_tables_;
  int num_joins_;
  std::unique_ptr<nn::Mlp> rel_mlp_;
  std::unique_ptr<nn::Mlp> join_mlp_;
};

}  // namespace encoder
}  // namespace qps

#endif  // QPS_ENCODER_QUERY_ENCODER_H_
