// Copyright 2026 The QPSeeker Authors
//
// Plan encoder (paper §4.2): one shared LSTM cell applied bottom-up over
// the plan tree. Each node's input concatenates (a) the (estimated or
// child-pooled) stats triple, (b) the physical operator one-hot, (c) the
// TabSketch data representation, (d) the subtree's relation one-hot sum,
// and (e) the mean of the children's data vectors. Each node's output is a
// vector whose last three dimensions are the node's normalized cardinality
// / cost / runtime predictions; the root holds the whole plan's values.

#ifndef QPS_ENCODER_PLAN_ENCODER_H_
#define QPS_ENCODER_PLAN_ENCODER_H_

#include <memory>
#include <vector>

#include "encoder/normalizer.h"
#include "encoder/query_encoder.h"
#include "tabert/tabsketch.h"

namespace qps {
namespace encoder {

class PlanEncoder : public nn::Module {
 public:
  PlanEncoder(const storage::Database& db, const tabert::TabSketch& tabert,
              const EncoderConfig& config, Rng* rng);

  struct Output {
    /// Node output vectors in post-order; each 1 x node_out.
    std::vector<nn::Var> node_outputs;
    /// Pointers to the plan nodes in the same post-order.
    std::vector<const query::PlanNode*> nodes;
    /// Stacked matrix (num_nodes x node_out), attention context.
    nn::Var node_matrix;
    /// Root output (== node_outputs.back()).
    nn::Var root;
  };

  /// Encodes a plan. Leaf stat inputs come from plan.estimated (the "DB
  /// optimizer EXPLAIN estimates" of the paper), normalized by `norm`.
  Output Encode(const query::Query& q, const query::PlanNode& plan,
                const LabelNormalizer& norm) const;

  /// Autograd-free batched encoding of many candidate plans of one query.
  /// Same math as Encode, but nodes at the same tree height across *all*
  /// plans advance through the shared LSTM cell and output projection as
  /// one batched GEMM (every leaf of every plan is one row of the level-0
  /// batch). TabSketch representations are computed once per relation /
  /// table per call.
  struct TensorOutput {
    nn::Tensor node_matrix;  ///< (num_nodes, node_out), post-order rows
    std::vector<const query::PlanNode*> nodes;  ///< same post-order
  };
  void EncodeBatch(const query::Query& q,
                   const std::vector<const query::PlanNode*>& plans,
                   const LabelNormalizer& norm,
                   std::vector<TensorOutput>* outs) const;

  int node_out_dim() const { return config_.node_out; }
  int node_input_dim() const { return input_dim_; }
  int data_vec_dim() const { return config_.node_out - 3; }

 private:
  struct NodeState {
    nn::LstmCell::State lstm;
    nn::Var output;  ///< 1 x node_out
  };

  NodeState EncodeNode(const query::Query& q, const query::PlanNode& node,
                       const LabelNormalizer& norm, Output* out) const;

  const storage::Database& db_;
  const tabert::TabSketch& tabert_;
  EncoderConfig config_;
  int input_dim_;
  std::unique_ptr<nn::LstmCell> cell_;
  std::unique_ptr<nn::Linear> out_proj_;
};

}  // namespace encoder
}  // namespace qps

#endif  // QPS_ENCODER_PLAN_ENCODER_H_
