// Copyright 2026 The QPSeeker Authors

#include "encoder/plan_encoder.h"

#include "util/logging.h"
#include "util/trace.h"

namespace qps {
namespace encoder {

using nn::Tensor;
using nn::Var;

PlanEncoder::PlanEncoder(const storage::Database& db, const tabert::TabSketch& tabert,
                         const EncoderConfig& config, Rng* rng)
    : db_(db), tabert_(tabert), config_(config) {
  // Input layout: [child data vector | child stats(3) | own EXPLAIN
  // estimates(3) | op one-hot | data repr | relation one-hot sum].
  input_dim_ = 6 + query::kNumOpTypes + tabert_.embedding_dim() + db.num_tables() +
               (config_.node_out - 3);
  cell_ = std::make_unique<nn::LstmCell>(input_dim_, config_.node_out, rng, "plan_cell");
  out_proj_ = std::make_unique<nn::Linear>(config_.node_out, config_.node_out, rng,
                                           "plan_out");
  RegisterChild("cell", cell_.get());
  RegisterChild("out", out_proj_.get());
}

PlanEncoder::NodeState PlanEncoder::EncodeNode(const query::Query& q,
                                               const query::PlanNode& node,
                                               const LabelNormalizer& norm,
                                               Output* out) const {
  const int dvec = data_vec_dim();
  Var stats_in, data_repr, child_data;
  nn::LstmCell::State state;

  if (node.is_leaf()) {
    // (a) Leaves have no children: zero child-stats.
    stats_in = nn::Constant(Tensor::Zeros(1, 3));
    // (c) TabSketch representation of the data processed (filtered column
    // or table [CLS]).
    data_repr = nn::Constant(tabert_.ScanDataRepresentation(q, node.rel));
    // (e) Leaves have no children: zero padding tells the cell so.
    child_data = nn::Constant(Tensor::Zeros(1, dvec));
    state = cell_->InitialState();
  } else {
    NodeState left = EncodeNode(q, *node.left, norm, out);
    NodeState right = EncodeNode(q, *node.right, norm, out);
    // (a) Mean-pool the children's own stat predictions (last 3 dims).
    Var lstats = nn::SliceCols(left.output, dvec, config_.node_out);
    Var rstats = nn::SliceCols(right.output, dvec, config_.node_out);
    stats_in = nn::Scale(nn::Add(lstats, rstats), 0.5f);
    // (c) Mean of [CLS] representations of every relation joined so far.
    const uint64_t mask = node.RelMask();
    Tensor cls(1, tabert_.embedding_dim());
    int count = 0;
    for (int r = 0; r < q.num_relations(); ++r) {
      if (!((mask >> r) & 1)) continue;
      const Tensor rep =
          tabert_.TableRepresentation(q.relations[static_cast<size_t>(r)].table_id);
      cls.AddInPlace(rep);
      ++count;
    }
    if (count > 0) cls.ScaleInPlace(1.0f / static_cast<float>(count));
    data_repr = nn::Constant(cls);
    // (e) Mean of the children's data vectors (information flowing up).
    Var ldata = nn::SliceCols(left.output, 0, dvec);
    Var rdata = nn::SliceCols(right.output, 0, dvec);
    child_data = nn::Scale(nn::Add(ldata, rdata), 0.5f);
    // LSTM state: children's states pooled.
    state.h = nn::Scale(nn::Add(left.lstm.h, right.lstm.h), 0.5f);
    state.c = nn::Scale(nn::Add(left.lstm.c, right.lstm.c), 0.5f);
  }

  // (b) Operator one-hot.
  Tensor op(1, query::kNumOpTypes);
  op(0, static_cast<int>(node.op)) = 1.0f;
  // (d) Relation one-hot sum over the subtree.
  Tensor rels(1, db_.num_tables());
  const uint64_t mask = node.RelMask();
  for (int r = 0; r < q.num_relations(); ++r) {
    if ((mask >> r) & 1) {
      rels(0, q.relations[static_cast<size_t>(r)].table_id) += 1.0f;
    }
  }

  if (!config_.use_data_repr) {
    data_repr = nn::Constant(Tensor::Zeros(1, tabert_.embedding_dim()));
  }
  // Own-node EXPLAIN-style estimates (normalized); for leaves this is what
  // the paper feeds from EXPLAIN, and providing the same signal at join
  // nodes lets the learned cost model generalize to plan depths never seen
  // in training (the Figure 9 transfer setting).
  const auto own3 = norm.Normalize(node.estimated);
  Var own_est = nn::Constant(Tensor::Row({own3[0], own3[1], own3[2]}));
  Var input = nn::ConcatCols({child_data, stats_in, own_est, nn::Constant(op),
                              data_repr, nn::Constant(rels)});
  // Reorder check: layout documented in the header is logical; the exact
  // concatenation order is fixed here and learned end-to-end.
  QPS_DCHECK(input->value.cols() == input_dim_);

  NodeState result;
  result.lstm = cell_->Forward(input, state);
  result.output = out_proj_->Forward(result.lstm.h);
  out->node_outputs.push_back(result.output);
  out->nodes.push_back(&node);
  return result;
}

PlanEncoder::Output PlanEncoder::Encode(const query::Query& q,
                                        const query::PlanNode& plan,
                                        const LabelNormalizer& norm) const {
  QPS_TRACE_SPAN("encode.plan");
  Output out;
  NodeState root = EncodeNode(q, plan, norm, &out);
  out.root = root.output;
  out.node_matrix = nn::ConcatRows(out.node_outputs);
  return out;
}

}  // namespace encoder
}  // namespace qps
