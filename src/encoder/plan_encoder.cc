// Copyright 2026 The QPSeeker Authors

#include "encoder/plan_encoder.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "util/logging.h"
#include "util/trace.h"

namespace qps {
namespace encoder {

using nn::Tensor;
using nn::Var;

PlanEncoder::PlanEncoder(const storage::Database& db, const tabert::TabSketch& tabert,
                         const EncoderConfig& config, Rng* rng)
    : db_(db), tabert_(tabert), config_(config) {
  // Input layout: [child data vector | child stats(3) | own EXPLAIN
  // estimates(3) | op one-hot | data repr | relation one-hot sum].
  input_dim_ = 6 + query::kNumOpTypes + tabert_.embedding_dim() + db.num_tables() +
               (config_.node_out - 3);
  cell_ = std::make_unique<nn::LstmCell>(input_dim_, config_.node_out, rng, "plan_cell");
  out_proj_ = std::make_unique<nn::Linear>(config_.node_out, config_.node_out, rng,
                                           "plan_out");
  RegisterChild("cell", cell_.get());
  RegisterChild("out", out_proj_.get());
}

PlanEncoder::NodeState PlanEncoder::EncodeNode(const query::Query& q,
                                               const query::PlanNode& node,
                                               const LabelNormalizer& norm,
                                               Output* out) const {
  const int dvec = data_vec_dim();
  Var stats_in, data_repr, child_data;
  nn::LstmCell::State state;

  if (node.is_leaf()) {
    // (a) Leaves have no children: zero child-stats.
    stats_in = nn::Constant(Tensor::Zeros(1, 3));
    // (c) TabSketch representation of the data processed (filtered column
    // or table [CLS]).
    data_repr = nn::Constant(tabert_.ScanDataRepresentation(q, node.rel));
    // (e) Leaves have no children: zero padding tells the cell so.
    child_data = nn::Constant(Tensor::Zeros(1, dvec));
    state = cell_->InitialState();
  } else {
    NodeState left = EncodeNode(q, *node.left, norm, out);
    NodeState right = EncodeNode(q, *node.right, norm, out);
    // (a) Mean-pool the children's own stat predictions (last 3 dims).
    Var lstats = nn::SliceCols(left.output, dvec, config_.node_out);
    Var rstats = nn::SliceCols(right.output, dvec, config_.node_out);
    stats_in = nn::Scale(nn::Add(lstats, rstats), 0.5f);
    // (c) Mean of [CLS] representations of every relation joined so far.
    const uint64_t mask = node.RelMask();
    Tensor cls(1, tabert_.embedding_dim());
    int count = 0;
    for (int r = 0; r < q.num_relations(); ++r) {
      if (!((mask >> r) & 1)) continue;
      const Tensor rep =
          tabert_.TableRepresentation(q.relations[static_cast<size_t>(r)].table_id);
      cls.AddInPlace(rep);
      ++count;
    }
    if (count > 0) cls.ScaleInPlace(1.0f / static_cast<float>(count));
    data_repr = nn::Constant(cls);
    // (e) Mean of the children's data vectors (information flowing up).
    Var ldata = nn::SliceCols(left.output, 0, dvec);
    Var rdata = nn::SliceCols(right.output, 0, dvec);
    child_data = nn::Scale(nn::Add(ldata, rdata), 0.5f);
    // LSTM state: children's states pooled.
    state.h = nn::Scale(nn::Add(left.lstm.h, right.lstm.h), 0.5f);
    state.c = nn::Scale(nn::Add(left.lstm.c, right.lstm.c), 0.5f);
  }

  // (b) Operator one-hot.
  Tensor op(1, query::kNumOpTypes);
  op(0, static_cast<int>(node.op)) = 1.0f;
  // (d) Relation one-hot sum over the subtree.
  Tensor rels(1, db_.num_tables());
  const uint64_t mask = node.RelMask();
  for (int r = 0; r < q.num_relations(); ++r) {
    if ((mask >> r) & 1) {
      rels(0, q.relations[static_cast<size_t>(r)].table_id) += 1.0f;
    }
  }

  if (!config_.use_data_repr) {
    data_repr = nn::Constant(Tensor::Zeros(1, tabert_.embedding_dim()));
  }
  // Own-node EXPLAIN-style estimates (normalized); for leaves this is what
  // the paper feeds from EXPLAIN, and providing the same signal at join
  // nodes lets the learned cost model generalize to plan depths never seen
  // in training (the Figure 9 transfer setting).
  const auto own3 = norm.Normalize(node.estimated);
  Var own_est = nn::Constant(Tensor::Row({own3[0], own3[1], own3[2]}));
  Var input = nn::ConcatCols({child_data, stats_in, own_est, nn::Constant(op),
                              data_repr, nn::Constant(rels)});
  // Reorder check: layout documented in the header is logical; the exact
  // concatenation order is fixed here and learned end-to-end.
  QPS_DCHECK(input->value.cols() == input_dim_);

  NodeState result;
  result.lstm = cell_->Forward(input, state);
  result.output = out_proj_->Forward(result.lstm.h);
  out->node_outputs.push_back(result.output);
  out->nodes.push_back(&node);
  return result;
}

PlanEncoder::Output PlanEncoder::Encode(const query::Query& q,
                                        const query::PlanNode& plan,
                                        const LabelNormalizer& norm) const {
  QPS_TRACE_SPAN("encode.plan");
  Output out;
  NodeState root = EncodeNode(q, plan, norm, &out);
  out.root = root.output;
  out.node_matrix = nn::ConcatRows(out.node_outputs);
  return out;
}

void PlanEncoder::EncodeBatch(const query::Query& q,
                              const std::vector<const query::PlanNode*>& plans,
                              const LabelNormalizer& norm,
                              std::vector<TensorOutput>* outs) const {
  QPS_TRACE_SPAN("encode.plan_batch");
  const int dvec = data_vec_dim();
  const int64_t hid = config_.node_out;
  const int64_t edim = tabert_.embedding_dim();

  // Flatten every plan into one node table, remembering child rows and tree
  // height. A node's children always sit at strictly lower heights, so
  // processing height levels in order satisfies the bottom-up dependency
  // while batching across plans.
  //
  // Identical subtrees are deduplicated: a node's encoder input is fully
  // determined by its operator, scan relation, (normalized) estimated
  // stats, and its children's encoded states, so two nodes whose subtrees
  // agree on exactly those fields produce the same row. MCTS candidate
  // batches are full of shared left-deep prefixes, which makes this the
  // main lever on batched-encode cost (the LSTM GEMM rows shrink to the
  // number of *distinct* subtrees). Matching is exact — the key holds the
  // fields themselves, child rows included — so dedup never changes
  // results, it only skips recomputing them.
  struct BatchNode {
    const query::PlanNode* node;
    int left = -1, right = -1;
    int height = 0;
  };
  struct NodeKey {
    int32_t op;
    int32_t rel;
    int32_t left, right;  ///< children's unique rows (-1 for leaves)
    uint64_t est[3];      ///< bit patterns of the estimated triple
    bool operator==(const NodeKey& o) const {
      return op == o.op && rel == o.rel && left == o.left && right == o.right &&
             est[0] == o.est[0] && est[1] == o.est[1] && est[2] == o.est[2];
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = 0x9e3779b97f4a7c15ull;
      const auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      };
      mix(static_cast<uint64_t>(static_cast<uint32_t>(k.op)));
      mix(static_cast<uint64_t>(static_cast<uint32_t>(k.rel)));
      mix(static_cast<uint64_t>(static_cast<uint32_t>(k.left)));
      mix(static_cast<uint64_t>(static_cast<uint32_t>(k.right)));
      mix(k.est[0]);
      mix(k.est[1]);
      mix(k.est[2]);
      return static_cast<size_t>(h);
    }
  };
  std::vector<BatchNode> all;
  std::unordered_map<NodeKey, int, NodeKeyHash> unique_rows;
  std::vector<std::vector<int>> plan_rows(plans.size());
  std::vector<std::vector<const query::PlanNode*>> plan_nodes(plans.size());
  std::function<int(const query::PlanNode&, int)> walk =
      [&](const query::PlanNode& nd, int p) -> int {
    BatchNode bn;
    bn.node = &nd;
    if (!nd.is_leaf()) {
      QPS_CHECK(nd.left != nullptr && nd.right != nullptr)
          << "EncodeBatch: join node with a missing child";
      bn.left = walk(*nd.left, p);
      bn.right = walk(*nd.right, p);
      bn.height = std::max(all[static_cast<size_t>(bn.left)].height,
                           all[static_cast<size_t>(bn.right)].height) +
                  1;
    }
    NodeKey key;
    key.op = static_cast<int32_t>(nd.op);
    key.rel = nd.rel;
    key.left = bn.left;
    key.right = bn.right;
    std::memcpy(&key.est[0], &nd.estimated.cardinality, sizeof(uint64_t));
    std::memcpy(&key.est[1], &nd.estimated.cost, sizeof(uint64_t));
    std::memcpy(&key.est[2], &nd.estimated.runtime_ms, sizeof(uint64_t));
    int row;
    const auto it = unique_rows.find(key);
    if (it != unique_rows.end()) {
      row = it->second;
    } else {
      row = static_cast<int>(all.size());
      all.push_back(bn);
      unique_rows.emplace(key, row);
    }
    plan_rows[static_cast<size_t>(p)].push_back(row);
    plan_nodes[static_cast<size_t>(p)].push_back(&nd);
    return row;
  };
  for (size_t p = 0; p < plans.size(); ++p) {
    walk(*plans[p], static_cast<int>(p));
  }
  const int64_t total = static_cast<int64_t>(all.size());
  int max_height = 0;
  for (const auto& bn : all) max_height = std::max(max_height, bn.height);
  std::vector<std::vector<int>> levels(static_cast<size_t>(max_height) + 1);
  for (size_t i = 0; i < all.size(); ++i) {
    levels[static_cast<size_t>(all[i].height)].push_back(static_cast<int>(i));
  }

  // Per-call TabSketch memoization: candidate plans of one query share scan
  // relations and join subsets heavily.
  std::unordered_map<int, Tensor> scan_reps;   // rel -> 1 x edim
  std::unordered_map<int, Tensor> table_reps;  // table id -> 1 x edim

  Tensor h_all(total, hid), c_all(total, hid), o_all(total, hid);
  Tensor x, h_batch, c_batch, o_batch;
  for (const auto& level : levels) {
    const int64_t batch = static_cast<int64_t>(level.size());
    x = Tensor(batch, input_dim_);
    h_batch = Tensor(batch, hid);
    c_batch = Tensor(batch, hid);
    for (int64_t b = 0; b < batch; ++b) {
      const BatchNode& bn = all[static_cast<size_t>(level[static_cast<size_t>(b)])];
      const query::PlanNode& node = *bn.node;
      float* row = x.data() + b * input_dim_;
      // Layout mirrors EncodeNode's ConcatCols order:
      // [child data | child stats(3) | own est(3) | op | data repr | rels].
      float* child_data = row;
      float* stats_in = row + dvec;
      float* own_est = stats_in + 3;
      float* op_onehot = own_est + 3;
      float* data_repr = op_onehot + query::kNumOpTypes;
      float* rels = data_repr + edim;

      if (node.is_leaf()) {
        if (config_.use_data_repr) {
          auto it = scan_reps.find(node.rel);
          if (it == scan_reps.end()) {
            it = scan_reps.emplace(node.rel, tabert_.ScanDataRepresentation(q, node.rel))
                     .first;
          }
          std::memcpy(data_repr, it->second.data(),
                      sizeof(float) * static_cast<size_t>(edim));
        }
      } else {
        const float* lo = o_all.data() + bn.left * hid;
        const float* ro = o_all.data() + bn.right * hid;
        for (int j = 0; j < dvec; ++j) child_data[j] = 0.5f * (lo[j] + ro[j]);
        for (int j = 0; j < 3; ++j) stats_in[j] = 0.5f * (lo[dvec + j] + ro[dvec + j]);
        if (config_.use_data_repr) {
          const uint64_t mask = node.RelMask();
          int count = 0;
          for (int r = 0; r < q.num_relations(); ++r) {
            if (!((mask >> r) & 1)) continue;
            const int table = q.relations[static_cast<size_t>(r)].table_id;
            auto it = table_reps.find(table);
            if (it == table_reps.end()) {
              it = table_reps.emplace(table, tabert_.TableRepresentation(table)).first;
            }
            const float* rep = it->second.data();
            for (int64_t j = 0; j < edim; ++j) data_repr[j] += rep[j];
            ++count;
          }
          if (count > 0) {
            const float inv = 1.0f / static_cast<float>(count);
            for (int64_t j = 0; j < edim; ++j) data_repr[j] *= inv;
          }
        }
        // LSTM state: children's states pooled, as in EncodeNode.
        const float* lh = h_all.data() + bn.left * hid;
        const float* rh = h_all.data() + bn.right * hid;
        const float* lc = c_all.data() + bn.left * hid;
        const float* rc = c_all.data() + bn.right * hid;
        float* hb = h_batch.data() + b * hid;
        float* cb = c_batch.data() + b * hid;
        for (int64_t j = 0; j < hid; ++j) {
          hb[j] = 0.5f * (lh[j] + rh[j]);
          cb[j] = 0.5f * (lc[j] + rc[j]);
        }
      }

      const auto own3 = norm.Normalize(node.estimated);
      own_est[0] = own3[0];
      own_est[1] = own3[1];
      own_est[2] = own3[2];
      op_onehot[static_cast<int>(node.op)] = 1.0f;
      const uint64_t mask = node.RelMask();
      for (int r = 0; r < q.num_relations(); ++r) {
        if ((mask >> r) & 1) {
          rels[q.relations[static_cast<size_t>(r)].table_id] += 1.0f;
        }
      }
    }

    cell_->ForwardTensor(x, &h_batch, &c_batch);
    out_proj_->ForwardTensor(h_batch, &o_batch);
    for (int64_t b = 0; b < batch; ++b) {
      const int row = level[static_cast<size_t>(b)];
      std::memcpy(h_all.data() + row * hid, h_batch.data() + b * hid,
                  sizeof(float) * static_cast<size_t>(hid));
      std::memcpy(c_all.data() + row * hid, c_batch.data() + b * hid,
                  sizeof(float) * static_cast<size_t>(hid));
      std::memcpy(o_all.data() + row * hid, o_batch.data() + b * hid,
                  sizeof(float) * static_cast<size_t>(hid));
    }
  }

  outs->clear();
  outs->resize(plans.size());
  for (size_t p = 0; p < plans.size(); ++p) {
    TensorOutput& out = (*outs)[p];
    const auto& rows = plan_rows[p];
    out.node_matrix = Tensor(static_cast<int64_t>(rows.size()), hid);
    out.nodes.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      std::memcpy(out.node_matrix.data() + static_cast<int64_t>(i) * hid,
                  o_all.data() + rows[i] * hid, sizeof(float) * static_cast<size_t>(hid));
      out.nodes.push_back(plan_nodes[p][i]);
    }
  }
}

}  // namespace encoder
}  // namespace qps
