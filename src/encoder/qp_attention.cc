// Copyright 2026 The QPSeeker Authors

#include "encoder/qp_attention.h"

#include "util/trace.h"

namespace qps {
namespace encoder {

QpAttention::QpAttention(int query_dim, int node_dim, const EncoderConfig& config,
                         Rng* rng)
    : query_dim_(query_dim), node_dim_(node_dim) {
  attn_ = std::make_unique<nn::MultiHeadCrossAttention>(
      query_dim, node_dim, config.attn_heads, config.attn_head_dim,
      query_dim + node_dim, rng, "qp_attn");
  RegisterChild("attn", attn_.get());
}

nn::Var QpAttention::Combine(const nn::Var& query_emb,
                             const PlanEncoder::Output& plan) const {
  QPS_TRACE_SPAN("encode.attention");
  if (plan.node_outputs.size() <= 1) {
    // Single-operator plan: attention over one node is a no-op; concatenate.
    return nn::ConcatCols({query_emb, plan.root});
  }
  return attn_->Forward(query_emb, plan.node_matrix);
}

}  // namespace encoder
}  // namespace qps
