// Copyright 2026 The QPSeeker Authors

#include "encoder/qp_attention.h"

#include <cstring>

#include "util/trace.h"

namespace qps {
namespace encoder {

QpAttention::QpAttention(int query_dim, int node_dim, const EncoderConfig& config,
                         Rng* rng)
    : query_dim_(query_dim), node_dim_(node_dim) {
  attn_ = std::make_unique<nn::MultiHeadCrossAttention>(
      query_dim, node_dim, config.attn_heads, config.attn_head_dim,
      query_dim + node_dim, rng, "qp_attn");
  RegisterChild("attn", attn_.get());
}

nn::Var QpAttention::Combine(const nn::Var& query_emb,
                             const PlanEncoder::Output& plan) const {
  QPS_TRACE_SPAN("encode.attention");
  if (plan.node_outputs.size() <= 1) {
    // Single-operator plan: attention over one node is a no-op; concatenate.
    return nn::ConcatCols({query_emb, plan.root});
  }
  return attn_->Forward(query_emb, plan.node_matrix);
}

void QpAttention::CombineTensor(const nn::Tensor& query_emb,
                                const nn::Tensor& node_matrix, nn::Tensor* out) const {
  QPS_TRACE_SPAN("encode.attention");
  if (node_matrix.rows() <= 1) {
    if (out->rows() != 1 || out->cols() != out_dim()) *out = nn::Tensor(1, out_dim());
    std::memcpy(out->data(), query_emb.data(),
                sizeof(float) * static_cast<size_t>(query_dim_));
    std::memcpy(out->data() + query_dim_, node_matrix.data(),
                sizeof(float) * static_cast<size_t>(node_dim_));
    return;
  }
  attn_->ForwardTensor(query_emb, node_matrix, out);
}

}  // namespace encoder
}  // namespace qps
