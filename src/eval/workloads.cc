// Copyright 2026 The QPSeeker Authors

#include "eval/workloads.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace qps {
namespace eval {

using query::FilterPredicate;
using query::JoinPredicate;
using query::Query;
using query::RelationRef;
using storage::CompareOp;

namespace {

/// Grows a connected query by walking the schema join graph.
Query RandomStructure(const storage::Database& db, int num_joins, Rng* rng) {
  Query q;
  const auto& edges = db.join_edges();
  QPS_CHECK(!edges.empty() || num_joins == 0);

  auto add_relation = [&](int table_id) {
    RelationRef ref;
    ref.table_id = table_id;
    ref.alias = StrFormat("t%d", q.num_relations());
    q.relations.push_back(ref);
    return q.num_relations() - 1;
  };

  if (num_joins == 0) {
    add_relation(static_cast<int>(rng->UniformInt(static_cast<uint64_t>(db.num_tables()))));
    return q;
  }

  // Seed with a random edge.
  const auto& first = edges[rng->UniformInt(edges.size())];
  const int rel_l = add_relation(first.left_table);
  const int rel_r = add_relation(first.right_table);
  JoinPredicate jp;
  jp.left_rel = rel_l;
  jp.left_column = first.left_column;
  jp.right_rel = rel_r;
  jp.right_column = first.right_column;
  jp.schema_edge = db.FindJoinEdge(first.left_table, first.left_column,
                                   first.right_table, first.right_column);
  q.joins.push_back(jp);

  for (int j = 1; j < num_joins; ++j) {
    // Pick a relation already in the query and an incident schema edge.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const int anchor =
          static_cast<int>(rng->UniformInt(static_cast<uint64_t>(q.num_relations())));
      const int anchor_table = q.relations[static_cast<size_t>(anchor)].table_id;
      std::vector<int> incident;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].left_table == anchor_table || edges[e].right_table == anchor_table) {
          incident.push_back(static_cast<int>(e));
        }
      }
      if (incident.empty()) continue;
      const auto& edge = edges[static_cast<size_t>(incident[rng->UniformInt(incident.size())])];
      const bool anchor_is_left = edge.left_table == anchor_table;
      const int new_table = anchor_is_left ? edge.right_table : edge.left_table;
      const int new_rel = add_relation(new_table);
      JoinPredicate njp;
      njp.left_rel = anchor;
      njp.left_column = anchor_is_left ? edge.left_column : edge.right_column;
      njp.right_rel = new_rel;
      njp.right_column = anchor_is_left ? edge.right_column : edge.left_column;
      njp.schema_edge = db.FindJoinEdge(edge.left_table, edge.left_column,
                                        edge.right_table, edge.right_column);
      q.joins.push_back(njp);
      break;
    }
  }
  return q;
}

/// Columns eligible for filtering on a table (everything but FK columns,
/// which rarely carry filters in the real workloads).
std::vector<int> FilterableColumns(const storage::Table& table) {
  std::vector<int> out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.column_meta(c).ref_table.empty()) continue;
    out.push_back(c);
  }
  return out;
}

/// Chooses the filter *sites* (relation, column, op) for a template.
struct FilterSite {
  int rel;
  int column;
  CompareOp op;
};

std::vector<FilterSite> RandomFilterSites(const storage::Database& db, const Query& q,
                                          int num_filters, Rng* rng) {
  std::vector<FilterSite> sites;
  static const CompareOp kNumericOps[] = {CompareOp::kEq, CompareOp::kLt,
                                          CompareOp::kLe, CompareOp::kGt,
                                          CompareOp::kGe};
  for (int f = 0; f < num_filters; ++f) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int rel =
          static_cast<int>(rng->UniformInt(static_cast<uint64_t>(q.num_relations())));
      const auto& table = db.table(q.relations[static_cast<size_t>(rel)].table_id);
      const auto cols = FilterableColumns(table);
      if (cols.empty()) continue;
      const int col = cols[rng->UniformInt(cols.size())];
      CompareOp op;
      if (table.column(col).type() == storage::DataType::kString) {
        op = rng->Bernoulli(0.8) ? CompareOp::kEq : CompareOp::kNe;
      } else {
        op = kNumericOps[rng->UniformInt(5)];
      }
      bool duplicate = false;
      for (const auto& s : sites) {
        duplicate = duplicate || (s.rel == rel && s.column == col);
      }
      if (duplicate) continue;
      sites.push_back(FilterSite{rel, col, op});
      break;
    }
  }
  return sites;
}

/// Samples a literal from the column's actual values (selectivities then
/// span the realistic range, including empty and huge results).
storage::Value SampleLiteral(const storage::Table& table, int col, Rng* rng) {
  const auto& column = table.column(col);
  if (column.size() == 0) return storage::Value::Int(0);
  const int64_t row = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(column.size())));
  switch (column.type()) {
    case storage::DataType::kInt64:
      return storage::Value::Int(column.GetInt(row));
    case storage::DataType::kFloat64:
      return storage::Value::Float(column.GetDouble(row));
    case storage::DataType::kString: {
      storage::Value v =
          storage::Value::Str(column.dictionary()[static_cast<size_t>(column.GetInt(row))]);
      v.i = column.GetInt(row);
      return v;
    }
  }
  return storage::Value::Int(0);
}

Query Instantiate(const storage::Database& db, const Query& structure,
                  const std::vector<FilterSite>& sites, const std::string& template_id,
                  Rng* rng) {
  Query q = structure;
  q.template_id = template_id;
  for (const auto& s : sites) {
    FilterPredicate fp;
    fp.rel = s.rel;
    fp.column = s.column;
    fp.op = s.op;
    const auto& table = db.table(q.relations[static_cast<size_t>(s.rel)].table_id);
    fp.value = SampleLiteral(table, s.column, rng);
    q.filters.push_back(fp);
  }
  return q;
}

}  // namespace

std::vector<Query> GenerateWorkload(const storage::Database& db,
                                    const WorkloadOptions& options, Rng* rng) {
  std::vector<Query> out;
  const int templates =
      options.num_templates > 0 ? options.num_templates : options.num_queries;
  struct Template {
    Query structure;
    std::vector<FilterSite> sites;
  };
  std::vector<Template> tpls;
  for (int t = 0; t < templates; ++t) {
    const int joins = static_cast<int>(
        rng->UniformInt(static_cast<int64_t>(options.min_joins),
                        static_cast<int64_t>(options.max_joins)));
    Template tpl;
    tpl.structure = RandomStructure(db, joins, rng);
    const int filters = static_cast<int>(
        rng->UniformInt(static_cast<int64_t>(options.min_filters),
                        static_cast<int64_t>(options.max_filters)));
    tpl.sites = RandomFilterSites(db, tpl.structure, filters, rng);
    tpls.push_back(std::move(tpl));
  }
  for (int i = 0; i < options.num_queries; ++i) {
    const int t = i % templates;
    out.push_back(Instantiate(db, tpls[static_cast<size_t>(t)].structure,
                              tpls[static_cast<size_t>(t)].sites,
                              StrFormat("%s_tpl%d", options.name_prefix.c_str(), t),
                              rng));
  }
  return out;
}

std::vector<Query> SyntheticWorkload(const storage::Database& imdb, Scale scale,
                                     Rng* rng) {
  WorkloadOptions o;
  o.min_joins = 0;
  o.max_joins = 2;
  o.min_filters = 1;
  o.max_filters = 3;
  o.name_prefix = "synthetic";
  switch (scale) {
    case Scale::kSmoke:
      o.num_queries = 40;
      break;
    case Scale::kCi:
      o.num_queries = 400;
      break;
    case Scale::kPaper:
      o.num_queries = 100000;
      break;
  }
  return GenerateWorkload(imdb, o, rng);
}

std::vector<Query> JobWorkload(const storage::Database& imdb, Scale scale, Rng* rng) {
  WorkloadOptions o;
  o.num_templates = 33;  // JOB: 113 queries from 33 template families
  o.num_queries = 113;
  o.min_filters = 1;
  o.max_filters = 4;
  o.name_prefix = "job";
  switch (scale) {
    case Scale::kSmoke:
      o.num_templates = 8;
      o.num_queries = 24;
      o.min_joins = 2;
      o.max_joins = 4;
      break;
    case Scale::kCi:
      o.min_joins = 3;
      o.max_joins = 6;
      break;
    case Scale::kPaper:
      o.min_joins = 4;
      o.max_joins = 16;
      break;
  }
  return GenerateWorkload(imdb, o, rng);
}

std::vector<Query> StackWorkload(const storage::Database& stack, Scale scale,
                                 Rng* rng) {
  WorkloadOptions o;
  o.min_filters = 1;
  o.max_filters = 3;
  o.name_prefix = "stack";
  switch (scale) {
    case Scale::kSmoke:
      o.num_queries = 30;
      o.min_joins = 1;
      o.max_joins = 3;
      break;
    case Scale::kCi:
      o.num_queries = 250;
      o.min_joins = 1;
      o.max_joins = 6;
      break;
    case Scale::kPaper:
      o.num_queries = 6200;
      o.min_joins = 1;
      o.max_joins = 12;
      break;
  }
  return GenerateWorkload(stack, o, rng);
}

std::vector<Query> JobLightWorkload(const storage::Database& imdb, Scale scale,
                                    Rng* rng) {
  WorkloadOptions o;
  o.num_queries = scale == Scale::kSmoke ? 12 : 70;
  o.min_joins = 1;
  o.max_joins = 3;
  o.min_filters = 1;
  o.max_filters = 2;
  o.name_prefix = "job_light";
  return GenerateWorkload(imdb, o, rng);
}

std::vector<Query> JobExtendedWorkload(const storage::Database& imdb, Scale scale,
                                       Rng* rng) {
  WorkloadOptions o;
  o.num_queries = scale == Scale::kSmoke ? 8 : 24;
  o.min_joins = scale == Scale::kSmoke ? 3 : 5;
  o.max_joins = scale == Scale::kSmoke ? 5 : 8;
  o.min_filters = 2;
  o.max_filters = 4;
  o.name_prefix = "job_ext";
  return GenerateWorkload(imdb, o, rng);
}

void SplitIndices(size_t n, double train_fraction, Rng* rng,
                  std::vector<size_t>* train, std::vector<size_t>* test) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  rng->Shuffle(&all);
  const size_t cut = static_cast<size_t>(train_fraction * static_cast<double>(n));
  train->assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(cut));
  test->assign(all.begin() + static_cast<ptrdiff_t>(cut), all.end());
}

void SplitQueries(size_t num_queries, double train_fraction, Rng* rng,
                  std::vector<int>* train_queries, std::vector<int>* test_queries) {
  std::vector<size_t> train, test;
  SplitIndices(num_queries, train_fraction, rng, &train, &test);
  train_queries->clear();
  test_queries->clear();
  for (size_t i : train) train_queries->push_back(static_cast<int>(i));
  for (size_t i : test) test_queries->push_back(static_cast<int>(i));
}

}  // namespace eval
}  // namespace qps
