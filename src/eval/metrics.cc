// Copyright 2026 The QPSeeker Authors

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace qps {
namespace eval {

double QError(double predicted, double truth, double floor) {
  const double p = std::max(std::abs(predicted), floor);
  const double t = std::max(std::abs(truth), floor);
  return std::max(p / t, t / p);
}

namespace {
double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

Percentiles ComputePercentiles(std::vector<double> values) {
  Percentiles out;
  out.count = values.size();
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.p50 = Quantile(values, 0.50);
  out.p90 = Quantile(values, 0.90);
  out.p95 = Quantile(values, 0.95);
  out.p99 = Quantile(values, 0.99);
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

std::string FormatRow(const std::string& label, const std::vector<double>& cells,
                      int width) {
  std::string out = StrFormat("%-8s", label.c_str());
  for (double c : cells) {
    out += StrFormat("%*s", width, FormatSig(c, 4).c_str());
  }
  return out;
}

std::string FormatHeader(const std::string& label,
                         const std::vector<std::string>& columns, int width) {
  std::string out = StrFormat("%-8s", label.c_str());
  for (const auto& c : columns) {
    out += StrFormat("%*s", width, c.c_str());
  }
  return out;
}

}  // namespace eval
}  // namespace qps
