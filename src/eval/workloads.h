// Copyright 2026 The QPSeeker Authors
//
// Workload generation for the paper's evaluation (Table 1):
//   Synthetic — MSCN-style, 0-2 joins over the IMDb-like database
//   JOB       — 113 multi-join queries drawn from 33 template families
//   Stack     — Bao's StackExchange workload shape
//   JOB-Light / JOB-Extended — the evaluation-only JOB variants
//
// Queries are generated as connected random walks over the schema join
// graph with literal constants sampled from real column values, so filter
// selectivities span the same wide range the real workloads exhibit.

#ifndef QPS_EVAL_WORKLOADS_H_
#define QPS_EVAL_WORKLOADS_H_

#include <vector>

#include "query/query.h"
#include "util/rng.h"
#include "util/scale.h"

namespace qps {
namespace eval {

struct WorkloadOptions {
  int num_queries = 100;
  int min_joins = 0;
  int max_joins = 2;
  int min_filters = 1;
  int max_filters = 3;
  /// >0: generate this many structural templates and cycle through them,
  /// varying filter constants (JOB-style); 0: every query independent.
  int num_templates = 0;
  std::string name_prefix = "q";
};

/// Generates a connected conjunctive workload over `db`'s join graph.
std::vector<query::Query> GenerateWorkload(const storage::Database& db,
                                           const WorkloadOptions& options, Rng* rng);

/// The paper's named workloads, scaled by `scale` (paper counts: Synthetic
/// 100K, JOB 113 queries / 50K sampled QEPs, Stack 6.2K, JOB-Light 70,
/// JOB-Extended 24).
std::vector<query::Query> SyntheticWorkload(const storage::Database& imdb,
                                            Scale scale, Rng* rng);
std::vector<query::Query> JobWorkload(const storage::Database& imdb, Scale scale,
                                      Rng* rng);
std::vector<query::Query> StackWorkload(const storage::Database& stack, Scale scale,
                                        Rng* rng);
std::vector<query::Query> JobLightWorkload(const storage::Database& imdb, Scale scale,
                                           Rng* rng);
std::vector<query::Query> JobExtendedWorkload(const storage::Database& imdb,
                                              Scale scale, Rng* rng);

/// 80/20 split by QEP index (Synthetic/Stack) — returns shuffled indices.
void SplitIndices(size_t n, double train_fraction, Rng* rng,
                  std::vector<size_t>* train, std::vector<size_t>* test);

/// Query-level split (JOB setting: held-out queries never seen in training).
void SplitQueries(size_t num_queries, double train_fraction, Rng* rng,
                  std::vector<int>* train_queries, std::vector<int>* test_queries);

}  // namespace eval
}  // namespace qps

#endif  // QPS_EVAL_WORKLOADS_H_
