// Copyright 2026 The QPSeeker Authors
//
// Evaluation metrics: Q-Error (Moerkotte et al.) and the percentile
// summaries (50/90/95/99 + std) every table in the paper reports.

#ifndef QPS_EVAL_METRICS_H_
#define QPS_EVAL_METRICS_H_

#include <string>
#include <vector>

namespace qps {
namespace eval {

/// Q-Error: max(pred/truth, truth/pred), both floored at `floor` to avoid
/// division blow-ups on empty results (the standard convention).
double QError(double predicted, double truth, double floor = 1.0);

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  size_t count = 0;
};

/// Percentiles by linear interpolation over the sorted values.
Percentiles ComputePercentiles(std::vector<double> values);

/// One row of a paper-style table: "  50%   1.97   8.89   116.98".
std::string FormatRow(const std::string& label, const std::vector<double>& cells,
                      int width = 12);

/// Header row with right-aligned column names.
std::string FormatHeader(const std::string& label,
                         const std::vector<std::string>& columns, int width = 12);

}  // namespace eval
}  // namespace qps

#endif  // QPS_EVAL_METRICS_H_
