// Copyright 2026 The QPSeeker Authors

#include "eval/workload_io.h"

#include <fstream>

#include "query/parser.h"
#include "util/string_util.h"

namespace qps {
namespace eval {

Status SaveWorkload(const std::vector<query::Query>& queries,
                    const storage::Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (const auto& q : queries) {
    if (!q.template_id.empty()) {
      out << "# template: " << q.template_id << "\n";
    }
    out << q.ToSql(db) << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<query::Query>> LoadWorkload(const storage::Database& db,
                                                 const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<query::Query> out;
  std::string line;
  std::string pending_template;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = StrTrim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      const std::string prefix = "# template: ";
      if (StartsWith(trimmed, prefix)) {
        pending_template = trimmed.substr(prefix.size());
      }
      continue;
    }
    auto q = query::ParseSql(trimmed, db);
    if (!q.ok()) {
      return Status::InvalidArgument(StrFormat("%s:%d: %s", path.c_str(), line_no,
                                               q.status().ToString().c_str()));
    }
    q->template_id = pending_template;
    pending_template.clear();
    out.push_back(std::move(q).value());
  }
  return out;
}

}  // namespace eval
}  // namespace qps
