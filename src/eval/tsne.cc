// Copyright 2026 The QPSeeker Authors

#include "eval/tsne.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.h"

namespace qps {
namespace eval {

namespace {

double SquaredDistance(const std::vector<float>& a, const std::vector<float>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    d += diff * diff;
  }
  return d;
}

/// Binary-searches the Gaussian bandwidth for one point to hit the target
/// perplexity; returns the row of conditional probabilities p_{j|i}.
std::vector<double> ConditionalP(const std::vector<double>& dist_row, size_t self,
                                 double perplexity) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_min = 0.0, beta_max = INFINITY;
  std::vector<double> p(dist_row.size(), 0.0);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0;
    for (size_t j = 0; j < dist_row.size(); ++j) {
      p[j] = j == self ? 0.0 : std::exp(-beta * dist_row[j]);
      sum += p[j];
    }
    if (sum <= 0.0) sum = 1e-12;
    double entropy = 0.0;
    for (size_t j = 0; j < dist_row.size(); ++j) {
      p[j] /= sum;
      if (p[j] > 1e-12) entropy -= p[j] * std::log(p[j]);
    }
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-4) break;
    if (diff > 0) {  // entropy too high -> increase beta
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  return p;
}

}  // namespace

std::vector<std::array<double, 2>> RunTsne(
    const std::vector<std::vector<float>>& points, const TsneOptions& options) {
  const size_t n = points.size();
  std::vector<std::array<double, 2>> y(n, {0.0, 0.0});
  if (n == 0) return y;
  QPS_CHECK(options.perplexity > 1.0);

  // Pairwise squared distances.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] = SquaredDistance(points[i], points[j]);
    }
  }
  // Symmetrized joint probabilities.
  const double perplexity = std::min(options.perplexity, static_cast<double>(n) / 3.0 + 1.01);
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    auto row = ConditionalP(dist[i], i, perplexity);
    for (size_t j = 0; j < n; ++j) p[i][j] = row[j];
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = std::max(1e-12, (p[i][j] + p[j][i]) / (2.0 * static_cast<double>(n)));
      p[i][j] = p[j][i] = v;
    }
    p[i][i] = 1e-12;
  }

  Rng rng(options.seed);
  for (auto& yi : y) {
    yi[0] = rng.Normal() * 1e-2;
    yi[1] = rng.Normal() * 1e-2;
  }
  std::vector<std::array<double, 2>> velocity(n, {0.0, 0.0});

  for (int iter = 0; iter < options.iterations; ++iter) {
    // Low-dimensional affinities (Student-t kernel).
    std::vector<std::vector<double>> qnum(n, std::vector<double>(n, 0.0));
    double qsum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double dy0 = y[i][0] - y[j][0];
        const double dy1 = y[i][1] - y[j][1];
        const double v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        qnum[i][j] = qnum[j][i] = v;
        qsum += 2.0 * v;
      }
    }
    qsum = std::max(qsum, 1e-12);
    const double momentum = iter < 80 ? 0.5 : 0.8;
    const double exaggeration = iter < 80 ? 4.0 : 1.0;
    for (size_t i = 0; i < n; ++i) {
      double g0 = 0.0, g1 = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double coeff =
            (exaggeration * p[i][j] - qnum[i][j] / qsum) * qnum[i][j];
        g0 += coeff * (y[i][0] - y[j][0]);
        g1 += coeff * (y[i][1] - y[j][1]);
      }
      velocity[i][0] = momentum * velocity[i][0] - options.learning_rate * 4.0 * g0;
      velocity[i][1] = momentum * velocity[i][1] - options.learning_rate * 4.0 * g1;
      y[i][0] += velocity[i][0];
      y[i][1] += velocity[i][1];
    }
    // Re-center (removes the drift mode and keeps coordinates bounded).
    double m0 = 0.0, m1 = 0.0;
    for (const auto& yi : y) {
      m0 += yi[0];
      m1 += yi[1];
    }
    m0 /= static_cast<double>(n);
    m1 /= static_cast<double>(n);
    for (auto& yi : y) {
      yi[0] -= m0;
      yi[1] -= m1;
    }
  }
  return y;
}

double SilhouetteScore(const std::vector<std::vector<float>>& points,
                       const std::vector<int>& labels) {
  const size_t n = points.size();
  QPS_CHECK(labels.size() == n);
  if (n < 3) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (size_t i = 0; i < n; ++i) {
    double intra = 0.0;
    int intra_count = 0;
    // Mean distance to every other cluster, tracked per label.
    std::vector<std::pair<int, std::pair<double, int>>> inter;  // label -> (sum, n)
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = std::sqrt(SquaredDistance(points[i], points[j]));
      if (labels[j] == labels[i]) {
        intra += d;
        ++intra_count;
      } else {
        bool found = false;
        for (auto& [lab, acc] : inter) {
          if (lab == labels[j]) {
            acc.first += d;
            acc.second += 1;
            found = true;
            break;
          }
        }
        if (!found) inter.push_back({labels[j], {d, 1}});
      }
    }
    if (intra_count == 0 || inter.empty()) continue;
    const double a = intra / intra_count;
    double b = INFINITY;
    for (const auto& [lab, acc] : inter) {
      b = std::min(b, acc.first / acc.second);
    }
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

double KnnLabelPurity(const std::vector<std::vector<float>>& points,
                      const std::vector<int>& labels, int k) {
  const size_t n = points.size();
  QPS_CHECK(labels.size() == n);
  if (n < 2 || k <= 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::pair<double, size_t>> dist;
    dist.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist.emplace_back(SquaredDistance(points[i], points[j]), j);
    }
    const size_t kk = std::min<size_t>(static_cast<size_t>(k), dist.size());
    std::partial_sort(dist.begin(), dist.begin() + static_cast<ptrdiff_t>(kk),
                      dist.end());
    int same = 0;
    for (size_t m = 0; m < kk; ++m) same += labels[dist[m].second] == labels[i];
    total += static_cast<double>(same) / static_cast<double>(kk);
  }
  return total / static_cast<double>(n);
}

}  // namespace eval
}  // namespace qps
