// Copyright 2026 The QPSeeker Authors
//
// Exact t-SNE (van der Maaten & Hinton) for the Figure 5 latent-space
// visualization, plus a silhouette score to quantify the clustering by
// query template that the paper shows visually.

#ifndef QPS_EVAL_TSNE_H_
#define QPS_EVAL_TSNE_H_

#include <array>
#include <vector>

#include "util/rng.h"

namespace qps {
namespace eval {

struct TsneOptions {
  double perplexity = 15.0;
  int iterations = 300;
  double learning_rate = 10.0;
  uint64_t seed = 42;
};

/// Embeds `points` (n rows of equal dimension) into 2-D. O(n^2) exact
/// gradient — fine for the few thousand QEPs Figure 5 plots.
std::vector<std::array<double, 2>> RunTsne(
    const std::vector<std::vector<float>>& points, const TsneOptions& options);

/// Mean silhouette coefficient of `points` under integer `labels` (higher =
/// tighter per-label clusters). Works in the original or embedded space.
double SilhouetteScore(const std::vector<std::vector<float>>& points,
                       const std::vector<int>& labels);

/// Mean fraction of each point's k nearest neighbours sharing its label —
/// a local clustering measure matching Figure 5's visual claim (same-
/// template QEPs land next to each other). Random baseline: the mean
/// squared label frequency (= chance of agreeing with a random point).
double KnnLabelPurity(const std::vector<std::vector<float>>& points,
                      const std::vector<int>& labels, int k);

}  // namespace eval
}  // namespace qps

#endif  // QPS_EVAL_TSNE_H_
