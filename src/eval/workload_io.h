// Copyright 2026 The QPSeeker Authors
//
// Workload persistence: save generated workloads as plain SQL files (one
// statement per line, '#' comments carry template ids) and load them back.
// Lets experiments pin exact query sets and users bring their own.

#ifndef QPS_EVAL_WORKLOAD_IO_H_
#define QPS_EVAL_WORKLOAD_IO_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "util/status.h"

namespace qps {
namespace eval {

/// Writes queries as SQL, one per line, preceded by "# template: <id>".
Status SaveWorkload(const std::vector<query::Query>& queries,
                    const storage::Database& db, const std::string& path);

/// Parses a workload file against `db`. Unparseable lines fail the load
/// with a line-numbered error.
StatusOr<std::vector<query::Query>> LoadWorkload(const storage::Database& db,
                                                 const std::string& path);

}  // namespace eval
}  // namespace qps

#endif  // QPS_EVAL_WORKLOAD_IO_H_
