// Copyright 2026 The QPSeeker Authors

#include "sampling/plan_sampler.h"

#include <algorithm>

#include "util/logging.h"

namespace qps {
namespace sampling {

using query::OpType;
using query::PlanPtr;
using query::Query;

PlanSampler::PlanSampler(const storage::Database& db,
                         const optimizer::CardinalityEstimator& cards,
                         SamplerOptions opts)
    : db_(db), cards_(cards), opts_(opts) {}

double PlanSampler::UserDefinedPlanCost(const Query& q, query::PlanNode* plan) const {
  cards_.EstimatePlanCardinalities(q, plan);
  plan->PostOrderMutable([&](query::PlanNode& node) {
    const double lr = node.left ? node.left->estimated.cardinality : 0.0;
    const double rr = node.right ? node.right->estimated.cardinality : 0.0;
    double cost =
        exec::UserDefinedNodeCost(db_, q, node, lr, rr, node.estimated.cardinality);
    if (node.left) cost += node.left->estimated.cost;
    if (node.right) cost += node.right->estimated.cost;
    node.estimated.cost = cost;
  });
  return plan->estimated.cost;
}

std::vector<PlanPtr> PlanSampler::SamplePlans(const Query& q, Rng* rng) const {
  std::vector<PlanPtr> candidates;
  const auto orders = query::EnumerateJoinOrders(q, opts_.max_join_orders);
  const auto& scan_ops = query::ScanOps();
  const auto& join_ops = query::JoinOps();
  for (const auto& order : orders) {
    for (size_t c = 0; c < opts_.candidates_per_order; ++c) {
      std::vector<OpType> scans, joins;
      for (size_t i = 0; i < order.size(); ++i) {
        scans.push_back(scan_ops[rng->UniformInt(scan_ops.size())]);
        if (i > 0) joins.push_back(join_ops[rng->UniformInt(join_ops.size())]);
      }
      PlanPtr plan = BuildLeftDeepPlan(q, order, scans, joins);
      if (plan == nullptr) continue;
      UserDefinedPlanCost(q, plan.get());
      candidates.push_back(std::move(plan));
    }
  }
  if (opts_.bushy_fraction > 0.0) {
    const size_t extra = static_cast<size_t>(
        opts_.bushy_fraction * static_cast<double>(candidates.size()));
    for (size_t i = 0; i < extra; ++i) {
      PlanPtr plan = BuildRandomBushyPlan(q, rng);
      if (plan == nullptr) continue;
      UserDefinedPlanCost(q, plan.get());
      candidates.push_back(std::move(plan));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PlanPtr& a, const PlanPtr& b) {
              return a->estimated.cost < b->estimated.cost;
            });
  size_t keep = static_cast<size_t>(
      std::ceil(opts_.keep_fraction * static_cast<double>(candidates.size())));
  keep = std::clamp(keep, std::min(opts_.min_plans_per_query, candidates.size()),
                    std::min(opts_.max_plans_per_query, candidates.size()));
  candidates.resize(keep);
  return candidates;
}

StatusOr<QepDataset> BuildQepDataset(const storage::Database& db,
                                     const stats::DatabaseStats& stats,
                                     std::vector<query::Query> queries,
                                     const DatasetOptions& options, Rng* rng) {
  QepDataset dataset;
  dataset.queries = std::move(queries);
  optimizer::Planner planner(db, stats);
  PlanSampler sampler(db, planner.cards(), options.sampler);
  exec::Executor executor(db, options.exec);

  for (size_t qi = 0; qi < dataset.queries.size(); ++qi) {
    const Query& q = dataset.queries[qi];
    std::vector<PlanPtr> plans;
    if (options.source == PlanSource::kOptimizer) {
      auto plan = planner.Plan(q);
      if (!plan.ok()) return plan.status();
      plans.push_back(std::move(plan).value());
    } else {
      plans = sampler.SamplePlans(q, rng);
      if (plans.empty()) {
        return Status::Internal("no plans sampled for query " + std::to_string(qi));
      }
    }
    for (auto& plan : plans) {
      auto card = executor.Execute(q, plan.get());
      if (!card.ok()) {
        if (card.status().IsResourceExhausted() && options.drop_aborted) {
          ++dataset.aborted;
          continue;
        }
        return card.status();
      }
      Qep qep;
      qep.query_id = static_cast<int>(qi);
      qep.plan = std::move(plan);
      dataset.qeps.push_back(std::move(qep));
    }
  }
  return dataset;
}

}  // namespace sampling
}  // namespace qps
