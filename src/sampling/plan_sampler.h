// Copyright 2026 The QPSeeker Authors
//
// Training-set generation by sampling the query plan space (paper §5.1):
// enumerate join orderings from the query graph, build left-deep trees,
// draw random physical operators per node, score every candidate with the
// user-defined cost model, keep the cheapest 15%, and execute the keepers
// to obtain ground-truth (cardinality, cost, runtime) labels per node.

#ifndef QPS_SAMPLING_PLAN_SAMPLER_H_
#define QPS_SAMPLING_PLAN_SAMPLER_H_

#include <vector>

#include "exec/executor.h"
#include "optimizer/cardinality.h"
#include "optimizer/planner.h"
#include "query/plan.h"
#include "util/rng.h"

namespace qps {
namespace sampling {

struct SamplerOptions {
  size_t max_join_orders = 200;      ///< cap on enumerated orders
  size_t candidates_per_order = 3;   ///< random operator draws per order
  double keep_fraction = 0.15;       ///< paper: cheapest 15%
  size_t max_plans_per_query = 40;   ///< hard cap on kept plans
  size_t min_plans_per_query = 2;    ///< keep at least this many if available
  /// Extension: fraction of candidates drawn as random bushy trees instead
  /// of left-deep (0 reproduces the paper exactly).
  double bushy_fraction = 0.0;
};

/// Samples candidate plans for one query. Plans come back with
/// estimated.cardinality (statistics-based) and estimated.cost (the §5.1
/// user-defined model) filled, sorted cheapest-first.
class PlanSampler {
 public:
  PlanSampler(const storage::Database& db, const optimizer::CardinalityEstimator& cards,
              SamplerOptions opts = {});

  std::vector<query::PlanPtr> SamplePlans(const query::Query& q, Rng* rng) const;

  /// Scores a plan with the user-defined cost model over estimated
  /// cardinalities (fills plan->estimated).
  double UserDefinedPlanCost(const query::Query& q, query::PlanNode* plan) const;

 private:
  const storage::Database& db_;
  const optimizer::CardinalityEstimator& cards_;
  SamplerOptions opts_;
};

/// One labeled query-execution-plan pair (paper: "QEP").
struct Qep {
  int query_id = -1;      ///< index into the workload's query list
  query::PlanPtr plan;    ///< actual.* filled on every node
};

/// How training plans are produced for a workload (paper §3.1).
enum class PlanSource {
  kOptimizer,  ///< one plan per query: the baseline optimizer's choice
  kSampled,    ///< many plans per query via PlanSampler
};

struct DatasetOptions {
  PlanSource source = PlanSource::kOptimizer;
  SamplerOptions sampler;
  exec::ExecOptions exec;
  /// Plans whose execution aborts (row limit / timeout) are dropped; the
  /// count is reported here.
  bool drop_aborted = true;
};

struct QepDataset {
  std::vector<query::Query> queries;
  std::vector<Qep> qeps;
  int aborted = 0;  ///< plans dropped due to executor limits
};

/// Builds a labeled QEP dataset for a workload: plans per `options.source`,
/// each executed for ground truth labels.
StatusOr<QepDataset> BuildQepDataset(const storage::Database& db,
                                     const stats::DatabaseStats& stats,
                                     std::vector<query::Query> queries,
                                     const DatasetOptions& options, Rng* rng);

}  // namespace sampling
}  // namespace qps

#endif  // QPS_SAMPLING_PLAN_SAMPLER_H_
