// Copyright 2026 The QPSeeker Authors

#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "eval/metrics.h"
#include "obs/accuracy.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace exec {

using query::OpType;
using query::PlanNode;
using query::Query;
using storage::kRowsPerBlock;

void WorkCounters::Add(const WorkCounters& other) {
  blocks_read += other.blocks_read;
  random_reads += other.random_reads;
  tuples_scanned += other.tuples_scanned;
  hash_build += other.hash_build;
  hash_probe += other.hash_probe;
  sort_compares += other.sort_compares;
  loop_compares += other.loop_compares;
  output_tuples += other.output_tuples;
}

double WorkCounters::RuntimeMs() const {
  static const WorkWeights w;
  return static_cast<double>(blocks_read) * w.block_read +
         static_cast<double>(random_reads) * w.random_read +
         static_cast<double>(tuples_scanned) * w.tuple_scan +
         static_cast<double>(hash_build) * w.hash_build +
         static_cast<double>(hash_probe) * w.hash_probe +
         static_cast<double>(sort_compares) * w.sort_compare +
         static_cast<double>(loop_compares) * w.loop_compare +
         static_cast<double>(output_tuples) * w.output_tuple;
}

int Executor::RowSet::ColForRel(int rel) const {
  for (size_t i = 0; i < rels.size(); ++i) {
    if (rels[i] == rel) return static_cast<int>(i);
  }
  return -1;
}

Executor::Executor(const storage::Database& db, ExecOptions opts)
    : db_(db), opts_(opts) {}

namespace {

/// log2(n) comparisons per element, floor 1.
int64_t SortCompares(int64_t n) {
  if (n <= 1) return n;
  return static_cast<int64_t>(static_cast<double>(n) *
                              std::max(1.0, std::log2(static_cast<double>(n))));
}

bool RowPassesFilters(const storage::Table& table,
                      const std::vector<query::FilterPredicate>& filters,
                      uint32_t row) {
  for (const auto& f : filters) {
    const double v = table.column(f.column).GetDouble(row);
    if (!storage::CompareDoubles(v, f.op, f.value.AsDouble())) return false;
  }
  return true;
}

}  // namespace

StatusOr<double> Executor::Execute(const Query& q, PlanNode* plan) {
  QPS_CHECK(plan != nullptr);
  static metrics::Counter* const executions_counter =
      metrics::Registry::Global().GetCounter("qps.exec.executions");
  static metrics::Histogram* const wall_hist =
      metrics::Registry::Global().GetHistogram("qps.exec.wall_ms");
  QPS_TRACE_SPAN("exec.execute");
  executions_counter->Increment();
  // The executor dereferences relation/column indices on every operator;
  // reject malformed (e.g. fuzz-mutated) queries at the boundary instead.
  QPS_RETURN_IF_ERROR(q.Validate(db_));
  Timer timer;
  total_ = WorkCounters{};
  node_wall_ms_.clear();
  auto result = ExecNode(q, plan);
  wall_hist->Record(timer.ElapsedMillis());
  if (!result.ok()) return result.status();
  return static_cast<double>(result->num_rows());
}

StatusOr<Executor::RowSet> Executor::ExecNode(const Query& q, PlanNode* node) {
  Timer timer;
  auto result = node->is_leaf() ? ExecScan(q, node) : ExecJoin(q, node);
  node_wall_ms_[node] = timer.ElapsedMillis();
  return result;
}

StatusOr<Executor::RowSet> Executor::ExecScan(const Query& q, PlanNode* node) {
  static metrics::Counter* const scans_counter =
      metrics::Registry::Global().GetCounter("qps.exec.scans");
  QPS_TRACE_SPAN_VAR(span, "exec.scan");
  span.AddAttr("op", query::OpTypeName(node->op));
  scans_counter->Increment();
  const auto& ref = q.relations[static_cast<size_t>(node->rel)];
  const storage::Table& table = db_.table(ref.table_id);
  const auto filters = q.FiltersFor(node->rel);
  const int64_t n = table.num_rows();

  WorkCounters c;
  RowSet out;
  out.rels = {node->rel};
  out.cols.resize(1);

  // Pick the filter driven through the index for Index/Bitmap scans:
  // the first filter on the scanned relation (PostgreSQL would pick the
  // most selective; samplers choose operators blindly, as in the paper).
  int index_filter = -1;
  if (node->op != OpType::kSeqScan && !filters.empty()) index_filter = 0;

  if (index_filter < 0) {
    // Full scan (SeqScan always; Index/Bitmap degenerate to index sweep).
    for (uint32_t r = 0; r < static_cast<uint32_t>(n); ++r) {
      if (RowPassesFilters(table, filters, r)) out.cols[0].push_back(r);
    }
    c.tuples_scanned += n;
    if (node->op == OpType::kSeqScan) {
      c.blocks_read += table.num_blocks();
    } else {
      // Sweeping the whole index with heap fetches: random access per tuple
      // (index scan) or per block after sorting tids (bitmap).
      c.random_reads +=
          node->op == OpType::kIndexScan ? n : table.num_blocks() + table.IndexHeight();
    }
  } else {
    const auto& f = filters[static_cast<size_t>(index_filter)];
    const auto& perm = table.OrderedIndex(f.column);
    const storage::Column& col = table.column(f.column);
    const double v = f.value.AsDouble();
    // Binary search the sorted permutation for the qualifying range.
    auto lower = std::partition_point(perm.begin(), perm.end(), [&](uint32_t r) {
      return col.GetDouble(r) < v;
    });
    auto upper = std::partition_point(lower, perm.end(), [&](uint32_t r) {
      return col.GetDouble(r) <= v;
    });
    std::vector<uint32_t> candidates;
    switch (f.op) {
      case storage::CompareOp::kEq:
        candidates.assign(lower, upper);
        break;
      case storage::CompareOp::kLt:
        candidates.assign(perm.begin(), lower);
        break;
      case storage::CompareOp::kLe:
        candidates.assign(perm.begin(), upper);
        break;
      case storage::CompareOp::kGt:
        candidates.assign(upper, perm.end());
        break;
      case storage::CompareOp::kGe:
        candidates.assign(lower, perm.end());
        break;
      case storage::CompareOp::kNe: {
        candidates.assign(perm.begin(), lower);
        candidates.insert(candidates.end(), upper, perm.end());
        break;
      }
    }
    std::vector<query::FilterPredicate> rest;
    for (size_t i = 0; i < filters.size(); ++i) {
      if (static_cast<int>(i) != index_filter) rest.push_back(filters[i]);
    }
    for (uint32_t r : candidates) {
      if (RowPassesFilters(table, rest, r)) out.cols[0].push_back(r);
    }
    const int64_t matched = static_cast<int64_t>(candidates.size());
    c.tuples_scanned += matched;
    c.random_reads += table.IndexHeight();
    if (node->op == OpType::kIndexScan) {
      // One heap fetch per matching tuple, in index order (random).
      c.random_reads += matched;
    } else {
      // Bitmap: sort tids, fetch each block once (sequential-ish).
      std::unordered_set<int64_t> blocks;
      for (uint32_t r : candidates) blocks.insert(r / kRowsPerBlock);
      c.blocks_read += static_cast<int64_t>(blocks.size());
      c.sort_compares += SortCompares(matched);
    }
    // Row order differs from heap order for index scans; keep heap order for
    // determinism downstream.
    std::sort(out.cols[0].begin(), out.cols[0].end());
  }

  c.output_tuples += static_cast<int64_t>(out.cols[0].size());
  total_.Add(c);

  node->actual.cardinality = static_cast<double>(out.cols[0].size());
  node->actual.runtime_ms = c.RuntimeMs();
  node->actual.cost = UserDefinedNodeCost(db_, q, *node, 0.0, 0.0,
                                          node->actual.cardinality);
  if (opts_.timeout_ms > 0.0 && total_.RuntimeMs() > opts_.timeout_ms) {
    return Status::ResourceExhausted("timeout during scan");
  }
  return out;
}

StatusOr<Executor::RowSet> Executor::ExecJoin(const Query& q, PlanNode* node) {
  static metrics::Counter* const joins_counter =
      metrics::Registry::Global().GetCounter("qps.exec.joins");
  QPS_TRACE_SPAN_VAR(span, "exec.join");
  span.AddAttr("op", query::OpTypeName(node->op));
  joins_counter->Increment();
  QPS_ASSIGN_OR_RETURN(RowSet left, ExecNode(q, node->left.get()));
  QPS_ASSIGN_OR_RETURN(RowSet right, ExecNode(q, node->right.get()));
  // Fault point: a join operator may fail mid-plan (labels of completed
  // children stay filled in, as with a genuine resource abort).
  QPS_RETURN_IF_ERROR(fault::Check("exec.join"));
  QPS_CHECK(!node->join_preds.empty()) << "join without predicates";

  const int64_t nl = left.num_rows();
  const int64_t nr = right.num_rows();

  // Resolve join keys: for each predicate, the (rowset column, table column)
  // on each side.
  struct KeySpec {
    int left_col;        // column in left RowSet
    int left_table_col;  // column in base table
    int left_table;
    int right_col;
    int right_table_col;
    int right_table;
  };
  std::vector<KeySpec> keys;
  for (int p : node->join_preds) {
    const auto& jp = q.joins[static_cast<size_t>(p)];
    KeySpec k;
    int lrel = jp.left_rel, lcol = jp.left_column;
    int rrel = jp.right_rel, rcol = jp.right_column;
    if (left.ColForRel(lrel) < 0) {
      std::swap(lrel, rrel);
      std::swap(lcol, rcol);
    }
    k.left_col = left.ColForRel(lrel);
    k.right_col = right.ColForRel(rrel);
    QPS_CHECK(k.left_col >= 0 && k.right_col >= 0) << "join predicate sides unresolved";
    k.left_table = q.relations[static_cast<size_t>(lrel)].table_id;
    k.left_table_col = lcol;
    k.right_table = q.relations[static_cast<size_t>(rrel)].table_id;
    k.right_table_col = rcol;
    keys.push_back(k);
  }

  auto key_of = [&](const RowSet& rs, bool is_left, int64_t row) {
    // Composite key folded with a hash; exactness is preserved by comparing
    // doubles directly (we fold bit patterns, collisions re-checked below).
    uint64_t h = 1469598103934665603ULL;
    for (const auto& k : keys) {
      const int col = is_left ? k.left_col : k.right_col;
      const int table = is_left ? k.left_table : k.right_table;
      const int tcol = is_left ? k.left_table_col : k.right_table_col;
      const uint32_t rid = rs.cols[static_cast<size_t>(col)][static_cast<size_t>(row)];
      const double v = db_.table(table).column(tcol).GetDouble(rid);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      h = (h ^ bits) * 1099511628211ULL;
    }
    return h;
  };

  // Build on the right input (PostgreSQL hashes the inner relation).
  std::unordered_multimap<uint64_t, int64_t> hash;
  hash.reserve(static_cast<size_t>(nr));
  for (int64_t r = 0; r < nr; ++r) hash.emplace(key_of(right, false, r), r);

  RowSet out;
  out.rels = left.rels;
  out.rels.insert(out.rels.end(), right.rels.begin(), right.rels.end());
  out.cols.resize(out.rels.size());

  auto exact_match = [&](int64_t lrow, int64_t rrow) {
    for (const auto& k : keys) {
      const uint32_t lrid =
          left.cols[static_cast<size_t>(k.left_col)][static_cast<size_t>(lrow)];
      const uint32_t rrid =
          right.cols[static_cast<size_t>(k.right_col)][static_cast<size_t>(rrow)];
      const double lv = db_.table(k.left_table).column(k.left_table_col).GetDouble(lrid);
      const double rv =
          db_.table(k.right_table).column(k.right_table_col).GetDouble(rrid);
      if (lv != rv) return false;
    }
    return true;
  };

  int64_t out_rows = 0;
  for (int64_t l = 0; l < nl; ++l) {
    const uint64_t h = key_of(left, true, l);
    auto range = hash.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const int64_t r = it->second;
      if (!exact_match(l, r)) continue;
      for (size_t cidx = 0; cidx < left.cols.size(); ++cidx) {
        out.cols[cidx].push_back(left.cols[cidx][static_cast<size_t>(l)]);
      }
      for (size_t cidx = 0; cidx < right.cols.size(); ++cidx) {
        out.cols[left.cols.size() + cidx].push_back(
            right.cols[cidx][static_cast<size_t>(r)]);
      }
      ++out_rows;
      if (out_rows > opts_.max_intermediate_rows) {
        node->actual.cardinality = static_cast<double>(out_rows);
        return Status::ResourceExhausted("intermediate result too large");
      }
    }
  }

  // Synthesize per-operator work. Output tuples are operator-independent;
  // the work profile is not.
  WorkCounters c;
  switch (node->op) {
    case OpType::kHashJoin:
      c.hash_build += nr;
      c.hash_probe += nl;
      break;
    case OpType::kMergeJoin:
      c.sort_compares += SortCompares(nl) + SortCompares(nr);
      c.hash_probe += nl + nr;  // merge pass touches every tuple once
      break;
    case OpType::kNestedLoopJoin:
      c.loop_compares += nl * std::max<int64_t>(nr, 1);
      break;
    default:
      QPS_CHECK(false) << "not a join operator";
  }
  c.output_tuples += out_rows;
  total_.Add(c);

  node->actual.cardinality = static_cast<double>(out_rows);
  node->actual.runtime_ms = c.RuntimeMs() + node->left->actual.runtime_ms +
                            node->right->actual.runtime_ms;
  node->actual.cost =
      UserDefinedNodeCost(db_, q, *node, node->left->actual.cardinality,
                          node->right->actual.cardinality,
                          node->actual.cardinality) +
      node->left->actual.cost + node->right->actual.cost;
  if (opts_.timeout_ms > 0.0 && total_.RuntimeMs() > opts_.timeout_ms) {
    return Status::ResourceExhausted("timeout during join");
  }
  return out;
}

std::string ExplainAnalysis::ToString() const {
  std::ostringstream os;
  for (const auto& row : rows) {
    for (int i = 0; i < row.depth; ++i) os << "  ";
    os << "-> " << row.label
       << StrFormat("  (est rows=%.0f actual rows=%.0f q-err=%.2f sim=%.3fms "
                    "wall=%.3fms)",
                    row.est_rows, row.actual_rows, row.q_error, row.sim_ms,
                    row.wall_ms);
    os << "\n";
  }
  os << StrFormat("Execution: %.0f rows, %.3f ms wall", root_rows, total_wall_ms);
  return os.str();
}

StatusOr<ExplainAnalysis> Executor::ExplainAnalyze(const Query& q, PlanNode* plan) {
  QPS_CHECK(plan != nullptr);
  QPS_TRACE_SPAN("exec.explain_analyze");
  Timer timer;
  auto card = Execute(q, plan);
  if (!card.ok()) return card.status();

  ExplainAnalysis out;
  out.root_rows = *card;
  out.total_wall_ms = timer.ElapsedMillis();

  // Pre-order walk mirroring PlanNode::ToString, with the same q-error
  // definition as the evaluation pipeline (eval::QError, floor 1).
  const std::function<void(const PlanNode&, int)> visit = [&](const PlanNode& node,
                                                              int depth) {
    ExplainRow row;
    row.node = &node;
    row.depth = depth;
    row.label = query::OpTypeName(node.op);
    if (node.is_leaf() && node.rel >= 0) {
      const auto& ref = q.relations[static_cast<size_t>(node.rel)];
      row.label += " on " + db_.table(ref.table_id).name() + " " + ref.alias;
    }
    row.est_rows = node.estimated.cardinality;
    row.actual_rows = node.actual.cardinality;
    row.q_error = eval::QError(row.est_rows, row.actual_rows);
    row.sim_ms = node.actual.runtime_ms;
    const auto it = node_wall_ms_.find(&node);
    row.wall_ms = it != node_wall_ms_.end() ? it->second : 0.0;
    out.rows.push_back(row);
    if (node.left != nullptr) visit(*node.left, depth + 1);
    if (node.right != nullptr) visit(*node.right, depth + 1);
  };
  visit(*plan, 0);

  // Close the serving loop: the root-node prediction/actual pair feeds the
  // global accuracy tracker so the drift gauges reflect executed traffic.
  if (!opts_.accuracy_backend.empty()) {
    obs::AccuracySample sample;
    sample.backend = opts_.accuracy_backend;
    sample.predicted_rows = plan->estimated.cardinality;
    sample.actual_rows = *card;
    sample.predicted_ms = plan->estimated.runtime_ms;
    sample.actual_ms = plan->actual.runtime_ms;
    if (obs::AccuracyTracker::Global().Observe(sample)) {
      static metrics::Counter* const feedback_samples =
          metrics::Registry::Global().GetCounter("qps.exec.feedback_samples");
      feedback_samples->Increment();
    }
  }
  return out;
}

double UserDefinedNodeCost(const storage::Database& db, const Query& q,
                           const query::PlanNode& node, double left_rows,
                           double right_rows, double out_rows) {
  // Paper §5.1 user-defined cost model, PostgreSQL-style constants.
  constexpr double kRandomPageCost = 4.0;
  constexpr double kCpuTupleCost = 0.01;
  if (query::IsScan(node.op)) {
    const auto& ref = q.relations[static_cast<size_t>(node.rel)];
    const storage::Table& t = db.table(ref.table_id);
    const double tbl_blocks = static_cast<double>(t.num_blocks());
    const double leaf_pages = static_cast<double>(t.IndexLeafPages());
    const double height = static_cast<double>(t.IndexHeight());
    switch (node.op) {
      case OpType::kSeqScan:
        return tbl_blocks + kRandomPageCost +
               leaf_pages / 2.0 * kCpuTupleCost +
               static_cast<double>(t.num_rows()) * kCpuTupleCost;
      case OpType::kIndexScan:
        return height * kRandomPageCost + leaf_pages / 2.0 * kCpuTupleCost +
               out_rows * kCpuTupleCost * 2.0;
      case OpType::kBitmapIndexScan:
        return height * kRandomPageCost +
               std::log2(std::max(2.0, tbl_blocks)) * kCpuTupleCost +
               out_rows * kCpuTupleCost;
      default:
        break;
    }
    return 0.0;
  }
  const double a = std::max(left_rows, 1.0);
  const double b = std::max(right_rows, 1.0);
  switch (node.op) {
    case OpType::kMergeJoin:
      return (a * std::log2(a + 1.0) + b * std::log2(b + 1.0) + a + b) * kCpuTupleCost +
             out_rows * kCpuTupleCost;
    case OpType::kHashJoin:
      return (a + 2.0 * b) * kCpuTupleCost + out_rows * kCpuTupleCost;
    case OpType::kNestedLoopJoin: {
      return (a * b * 0.01 + a + b) * kCpuTupleCost + out_rows * kCpuTupleCost;
    }
    default:
      break;
  }
  return 0.0;
}

}  // namespace exec
}  // namespace qps
