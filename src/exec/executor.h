// Copyright 2026 The QPSeeker Authors
//
// Plan execution with ground-truth label extraction. This plays the role
// pgCuckoo plays in the paper: any physical plan tree — not just the
// built-in optimizer's choice — can be executed directly, yielding true
// per-node cardinalities, costs and runtimes for training QEPs.
//
// Runtime labels are produced by a deterministic work-based model: each
// operator accrues counters (blocks read, tuples scanned, hash probes,
// comparisons, ...) that are converted to milliseconds with fixed weights.
// Join *outputs* are computed via hashing regardless of the plan's join
// operator (output tuples are operator-independent), while the counters are
// synthesized per operator (a nested loop accrues |L|*|R| comparisons, a
// merge join accrues both sorts, ...). This keeps label generation fast and
// bit-reproducible while preserving the operator-dependent cost structure
// the paper's cost model learns.

#ifndef QPS_EXEC_EXECUTOR_H_
#define QPS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/plan.h"
#include "query/query.h"
#include "storage/database.h"
#include "util/status.h"

namespace qps {
namespace exec {

/// Work accounting for one operator.
struct WorkCounters {
  int64_t blocks_read = 0;      ///< sequential block reads
  int64_t random_reads = 0;     ///< random page fetches (index probes)
  int64_t tuples_scanned = 0;   ///< base tuples materialized
  int64_t hash_build = 0;       ///< tuples inserted into hash tables
  int64_t hash_probe = 0;       ///< hash probes
  int64_t sort_compares = 0;    ///< comparisons in sorts (merge join)
  int64_t loop_compares = 0;    ///< nested-loop pair comparisons
  int64_t output_tuples = 0;

  void Add(const WorkCounters& other);

  /// Deterministic runtime in milliseconds.
  double RuntimeMs() const;
};

/// Per-tuple work weights in ms (the simulated machine).
struct WorkWeights {
  double block_read = 0.05;
  double random_read = 0.2;
  double tuple_scan = 0.0005;
  double hash_build = 0.0015;
  double hash_probe = 0.0008;
  double sort_compare = 0.0004;
  double loop_compare = 0.00015;
  double output_tuple = 0.0008;
};

struct ExecOptions {
  /// Abort (Status::ResourceExhausted) if an intermediate result exceeds
  /// this many tuples — the analogue of a statement timeout.
  int64_t max_intermediate_rows = 2'000'000;
  /// Also abort if simulated runtime exceeds this budget (<=0: no limit).
  double timeout_ms = 0.0;
  /// Backend label under which ExplainAnalyze feeds the root-node
  /// predicted-vs-actual pair into obs::AccuracyTracker::Global(), closing
  /// the serving loop for the q-error drift tracker. Empty disables the
  /// feedback (Execute alone never reports).
  std::string accuracy_backend = "exec";
};

/// One operator of an EXPLAIN ANALYZE report, in pre-order (root first).
struct ExplainRow {
  const query::PlanNode* node = nullptr;
  int depth = 0;
  std::string label;        ///< "HashJoin", "SeqScan on title t", ...
  double est_rows = 0.0;    ///< optimizer/model cardinality estimate
  double actual_rows = 0.0; ///< true output cardinality
  double q_error = 0.0;     ///< eval::QError(est_rows, actual_rows)
  double sim_ms = 0.0;      ///< simulated runtime (work model, cumulative)
  double wall_ms = 0.0;     ///< measured wall time (cumulative over subtree)
};

/// Structured EXPLAIN ANALYZE result: rows for programmatic checks (the
/// q-error column is asserted against eval::QError in tests), ToString for
/// the qpsql shell.
struct ExplainAnalysis {
  std::vector<ExplainRow> rows;
  double root_rows = 0.0;
  double total_wall_ms = 0.0;

  std::string ToString() const;
};

/// Executes physical plans over a database.
class Executor {
 public:
  explicit Executor(const storage::Database& db, ExecOptions opts = {});

  /// Runs `plan` for `q`, filling plan->actual on every node (cardinality,
  /// cost per the paper's user-defined cost model, cumulative runtime).
  /// Returns the root output cardinality.
  ///
  /// On resource exhaustion the filled-in labels up to the abort point are
  /// preserved and Status::ResourceExhausted is returned; callers may clamp.
  StatusOr<double> Execute(const query::Query& q, query::PlanNode* plan);

  /// Executes `plan` and reports per-operator estimated vs. actual rows,
  /// cardinality q-error, simulated runtime and measured wall time. The
  /// plan's `estimated` stats must be annotated by the planner beforehand.
  StatusOr<ExplainAnalysis> ExplainAnalyze(const query::Query& q,
                                           query::PlanNode* plan);

  /// Counters accumulated by the last Execute call (whole plan).
  const WorkCounters& last_counters() const { return total_; }

 private:
  struct RowSet {
    std::vector<int> rels;                     ///< relation indices, column order
    std::vector<std::vector<uint32_t>> cols;   ///< cols[i]: row ids for rels[i]
    int64_t num_rows() const {
      return cols.empty() ? 0 : static_cast<int64_t>(cols[0].size());
    }
    int ColForRel(int rel) const;
  };

  StatusOr<RowSet> ExecNode(const query::Query& q, query::PlanNode* node);
  StatusOr<RowSet> ExecScan(const query::Query& q, query::PlanNode* node);
  StatusOr<RowSet> ExecJoin(const query::Query& q, query::PlanNode* node);

  const storage::Database& db_;
  ExecOptions opts_;
  WorkWeights weights_;
  WorkCounters total_;
  /// Measured wall time per node of the last Execute (cumulative, keyed by
  /// node pointer; consumed by ExplainAnalyze).
  std::unordered_map<const query::PlanNode*, double> node_wall_ms_;
};

/// The paper's user-defined cost model (§5.1), evaluated on true
/// cardinalities. Used both for labeling plans and by the plan sampler.
double UserDefinedNodeCost(const storage::Database& db, const query::Query& q,
                           const query::PlanNode& node, double left_rows,
                           double right_rows, double out_rows);

}  // namespace exec
}  // namespace qps

#endif  // QPS_EXEC_EXECUTOR_H_
