// Copyright 2026 The QPSeeker Authors

#include "tabert/tabsketch.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/timer.h"

namespace qps {
namespace tabert {

namespace {

float SafeLog1p(double v) { return static_cast<float>(std::log1p(std::max(0.0, v))); }

/// Normalizes a value into [0,1] within [lo, hi].
float Norm(double v, double lo, double hi) {
  if (hi <= lo) return 0.5f;
  return static_cast<float>(std::clamp((v - lo) / (hi - lo), 0.0, 1.0));
}

}  // namespace

TabSketch::TabSketch(const storage::Database& db, const stats::DatabaseStats& stats,
                     TabSketchConfig config, uint64_t seed)
    : db_(db), stats_(stats), config_(config) {
  Rng rng(seed);
  const int dim = config_.ResolvedDim();
  // Fixed random projections play the role of pretrained weights: they are
  // data-independent, shared across databases, and never trained.
  projection_ = nn::Tensor::Randn(kRawFeatures, dim, &rng,
                                  1.0f / std::sqrt(static_cast<float>(kRawFeatures)));
  mixer_ = nn::Tensor::Randn(dim, dim, &rng, 1.0f / std::sqrt(static_cast<float>(dim)));
}

nn::Tensor TabSketch::RawColumnFeatures(int table, int column,
                                        const query::FilterPredicate* pred) const {
  const stats::ColumnStats& cs = stats_.column(table, column);
  nn::Tensor raw(1, kRawFeatures);
  int i = 0;
  // Datatype one-hot (TaBERT's datatype prediction pretraining signal).
  raw(0, i + static_cast<int>(cs.type)) = 1.0f;
  i += 3;
  raw(0, i++) = SafeLog1p(static_cast<double>(cs.row_count));
  raw(0, i++) = SafeLog1p(static_cast<double>(cs.distinct_count));
  raw(0, i++) = static_cast<float>(cs.row_count > 0
                                       ? static_cast<double>(cs.distinct_count) /
                                             static_cast<double>(cs.row_count)
                                       : 0.0);
  raw(0, i++) = Norm(cs.mean, cs.min, cs.max);
  raw(0, i++) = static_cast<float>(
      cs.stddev / std::max(1e-9, cs.max - cs.min));
  raw(0, i++) = SafeLog1p(std::fabs(cs.min));
  raw(0, i++) = SafeLog1p(std::fabs(cs.max));
  // MCV mass profile: top-4 fractions (value-distribution skew signal).
  for (int m = 0; m < 4; ++m) {
    raw(0, i++) = m < static_cast<int>(cs.mcv.fractions.size())
                      ? static_cast<float>(cs.mcv.fractions[static_cast<size_t>(m)])
                      : 0.0f;
  }
  // Histogram quantile shape: 16 normalized boundaries.
  const auto& bounds = cs.histogram.bounds();
  for (int b = 0; b < 16; ++b) {
    if (bounds.size() >= 2) {
      const size_t idx = (bounds.size() - 1) * static_cast<size_t>(b) / 15;
      raw(0, i++) = Norm(bounds[idx], cs.min, cs.max);
    } else {
      raw(0, i++) = 0.0f;
    }
  }
  // Predicate conditioning (the query-aware part of TaBERT's encoding).
  if (pred != nullptr) {
    const double sel = cs.Selectivity(pred->op, pred->value.AsDouble());
    raw(0, i++) = static_cast<float>(sel);
    raw(0, i++) = static_cast<float>(
        cs.histogram.ConditionalEntropy(pred->op, pred->value.AsDouble()));
    raw(0, i++) = Norm(pred->value.AsDouble(), cs.min, cs.max);
  } else {
    raw(0, i++) = 1.0f;  // unconditioned: selectivity 1
    raw(0, i++) = static_cast<float>(std::log(
        std::max(2, cs.histogram.num_buckets())));
    raw(0, i++) = 0.5f;
  }
  QPS_CHECK(i == kRawFeatures) << "feature count drift: " << i;
  return raw;
}

nn::Tensor TabSketch::Project(const nn::Tensor& raw) const {
  Timer timer;
  const int dim = config_.ResolvedDim();
  nn::Tensor h(1, dim);
  nn::MatMulInto(raw, projection_, &h);
  for (int64_t j = 0; j < dim; ++j) h(0, j) = std::tanh(h(0, j));
  // K rounds of mixing emulate TaBERT's per-row vertical attention: K=3 and
  // the large model do proportionally more work (Figure 8 right).
  const int rounds = config_.k * (config_.size == ModelSize::kLarge ? 3 : 1);
  nn::Tensor tmp(1, dim);
  for (int r = 0; r < rounds; ++r) {
    nn::MatMulInto(h, mixer_, &tmp);
    for (int64_t j = 0; j < dim; ++j) h(0, j) = std::tanh(tmp(0, j) + h(0, j));
  }
  total_time_ms_ += timer.ElapsedMillis();
  ++num_calls_;
  return h;
}

nn::Tensor TabSketch::ColumnRepresentation(int table, int column,
                                           const query::FilterPredicate* pred) const {
  if (pred == nullptr) {
    const int64_t key = (static_cast<int64_t>(table) << 32) | (column + 1);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    nn::Tensor rep = Project(RawColumnFeatures(table, column, nullptr));
    cache_.emplace(key, rep);
    return rep;
  }
  return Project(RawColumnFeatures(table, column, pred));
}

nn::Tensor TabSketch::TableRepresentation(int table) const {
  const int64_t key = static_cast<int64_t>(table) << 32;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  // [CLS]: mean of column representations (computed through the same
  // projection, so timing accounts for each column).
  const storage::Table& t = db_.table(table);
  const int dim = config_.ResolvedDim();
  nn::Tensor cls(1, dim);
  const int ncols = std::max<int>(1, static_cast<int>(t.num_columns()));
  for (int c = 0; c < t.num_columns(); ++c) {
    nn::Tensor rep = Project(RawColumnFeatures(table, c, nullptr));
    for (int64_t j = 0; j < dim; ++j) cls(0, j) += rep(0, j) / static_cast<float>(ncols);
  }
  cache_.emplace(key, cls);
  return cls;
}

nn::Tensor TabSketch::ScanDataRepresentation(const query::Query& q, int rel) const {
  const int table = q.relations[static_cast<size_t>(rel)].table_id;
  for (const auto& f : q.filters) {
    if (f.rel == rel) {
      return ColumnRepresentation(table, f.column, &f);
    }
  }
  return TableRepresentation(table);
}

}  // namespace tabert
}  // namespace qps
