// Copyright 2026 The QPSeeker Authors
//
// TabSketch: QPSeeker's stand-in for TaBERT (§4.2). TaBERT cannot be used
// offline (hundreds of MB of pretrained weights); what QPSeeker consumes
// from it is a *data-distribution-aware representation of the columns and
// tables a query touches*, conditioned on the query's predicates. TabSketch
// produces exactly that from ANALYZE statistics:
//
//   raw feature vector  = [datatype one-hot | log-scale size/ndv | moments |
//                          MCV mass profile | 16 histogram quantiles |
//                          predicate selectivity + conditional entropy]
//   representation      = fixed random ("pretrained") projection + K rounds
//                         of nonlinear mixing (emulating TaBERT's vertical
//                         attention over the top-K rows).
//
// The K ∈ {1,3} and base/large knobs mirror the paper's TaBERT configs:
// they do not change *what* is encoded, only representation width and
// compute, which is what Figure 8 measures.

#ifndef QPS_TABERT_TABSKETCH_H_
#define QPS_TABERT_TABSKETCH_H_

#include <memory>
#include <unordered_map>

#include "nn/tensor.h"
#include "query/query.h"
#include "stats/analyze.h"
#include "storage/database.h"

namespace qps {
namespace tabert {

enum class ModelSize { kBase, kLarge };

struct TabSketchConfig {
  ModelSize size = ModelSize::kBase;
  int k = 1;  ///< TaBERT's top-K rows knob (1 or 3)
  /// Embedding width; 0 means derive from `size` (base 48, large 96).
  int embedding_dim = 0;

  int ResolvedDim() const {
    if (embedding_dim > 0) return embedding_dim;
    return size == ModelSize::kBase ? 48 : 96;
  }
};

/// Stateless-after-construction encoder of tables and columns.
class TabSketch {
 public:
  TabSketch(const storage::Database& db, const stats::DatabaseStats& stats,
            TabSketchConfig config = {}, uint64_t seed = 0x7ab5);

  /// Representation of one column, optionally conditioned on a predicate
  /// over that column (paper: "we take the representation of this column
  /// filtered based on this predicate"). Output: 1 x embedding_dim.
  nn::Tensor ColumnRepresentation(int table, int column,
                                  const query::FilterPredicate* pred) const;

  /// [CLS]-style whole-table representation (pooled column sketches plus
  /// table-level size features). Output: 1 x embedding_dim.
  nn::Tensor TableRepresentation(int table) const;

  /// Representation of the data a scan node processes: the filtered column
  /// if the query filters this relation, otherwise the table [CLS].
  nn::Tensor ScanDataRepresentation(const query::Query& q, int rel) const;

  int embedding_dim() const { return config_.ResolvedDim(); }
  const TabSketchConfig& config() const { return config_; }

  /// Latency accounting (Figure 8 right: avg time spent in TaBERT).
  double total_time_ms() const { return total_time_ms_; }
  int64_t num_calls() const { return num_calls_; }
  void ResetTiming() const {
    total_time_ms_ = 0.0;
    num_calls_ = 0;
  }

  /// Raw (pre-projection) feature width: datatype(3) + size/ndv(3) +
  /// moments(4) + MCV(4) + histogram quantiles(16) + predicate(3).
  static constexpr int kRawFeatures = 33;

 private:
  nn::Tensor RawColumnFeatures(int table, int column,
                               const query::FilterPredicate* pred) const;
  nn::Tensor Project(const nn::Tensor& raw) const;

  const storage::Database& db_;
  const stats::DatabaseStats& stats_;
  TabSketchConfig config_;
  nn::Tensor projection_;  ///< kRawFeatures x dim, fixed at construction
  nn::Tensor mixer_;       ///< dim x dim, applied K times ("vertical attention")
  mutable double total_time_ms_ = 0.0;
  mutable int64_t num_calls_ = 0;
  mutable std::unordered_map<int64_t, nn::Tensor> cache_;  ///< unconditioned reps
};

}  // namespace tabert
}  // namespace qps

#endif  // QPS_TABERT_TABSKETCH_H_
