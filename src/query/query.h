// Copyright 2026 The QPSeeker Authors
//
// Query intermediate representation. A query is the triple the paper (and
// MSCN) extracts: the set of relations T_q, the set of equi-joins J_q, and
// the set of filter predicates P_q. Relation *instances* are used so the
// same table may appear twice (JOB-style self-joins via aliases).

#ifndef QPS_QUERY_QUERY_H_
#define QPS_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/value.h"
#include "util/status.h"

namespace qps {
namespace query {

/// A base-table occurrence in the FROM list.
struct RelationRef {
  int table_id = -1;   ///< index into the database catalog
  std::string alias;   ///< unique within the query
};

/// rel[left_rel].left_column = rel[right_rel].right_column
struct JoinPredicate {
  int left_rel = -1;    ///< index into Query::relations
  int left_column = -1;
  int right_rel = -1;
  int right_column = -1;
  int schema_edge = -1;  ///< id in Database::join_edges(), or -1 if ad hoc
};

/// rel[rel].column op value
struct FilterPredicate {
  int rel = -1;
  int column = -1;
  storage::CompareOp op = storage::CompareOp::kEq;
  storage::Value value;
};

/// A (conjunctive, equi-join) query over a database.
struct Query {
  std::vector<RelationRef> relations;
  std::vector<JoinPredicate> joins;
  std::vector<FilterPredicate> filters;
  std::string template_id;  ///< workload bookkeeping (e.g. JOB template)

  int num_relations() const { return static_cast<int>(relations.size()); }

  /// Filters attached to one relation instance.
  std::vector<FilterPredicate> FiltersFor(int rel) const;

  /// Adjacency of the join graph over relation indices. Out-of-range or
  /// self-referencing (left_rel == right_rel) join predicates contribute no
  /// edge, so a mutated query cannot corrupt the graph walk.
  std::vector<std::vector<int>> JoinAdjacency() const;

  /// True if the join graph connects all relations (no cross products).
  /// A query with zero relations is not connected.
  bool IsConnected() const;

  /// Catalog-independent self-consistency: every join/filter index targets
  /// an existing relation instance, no join predicate relates a relation
  /// instance to itself, and aliases are non-empty and unique. This is the
  /// floor every planner entry point enforces (core::CheckPlannable), so
  /// malformed fuzz mutants fail with a Status instead of indexing UB.
  Status ValidateStructure() const;

  /// Full validation against a catalog: ValidateStructure plus table ids in
  /// range for `db`, column indices in range for their tables, join-column
  /// type classes matching, and filter literals finite and type-compatible
  /// with the filtered column. The parser and the executor both run this.
  Status Validate(const storage::Database& db) const;

  /// SQL-ish rendering for logs and docs.
  std::string ToSql(const storage::Database& db) const;
};

}  // namespace query
}  // namespace qps

#endif  // QPS_QUERY_QUERY_H_
