// Copyright 2026 The QPSeeker Authors

#include "query/plan.h"

#include <cmath>
#include <sstream>

#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace qps {
namespace query {

bool IsScan(OpType op) {
  return op == OpType::kSeqScan || op == OpType::kIndexScan ||
         op == OpType::kBitmapIndexScan;
}

bool IsJoin(OpType op) { return !IsScan(op); }

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
      return "SeqScan";
    case OpType::kIndexScan:
      return "IndexScan";
    case OpType::kBitmapIndexScan:
      return "BitmapIndexScan";
    case OpType::kHashJoin:
      return "HashJoin";
    case OpType::kMergeJoin:
      return "MergeJoin";
    case OpType::kNestedLoopJoin:
      return "NestedLoop";
  }
  return "?";
}

const std::vector<OpType>& ScanOps() {
  static const std::vector<OpType> kOps = {OpType::kSeqScan, OpType::kIndexScan,
                                           OpType::kBitmapIndexScan};
  return kOps;
}

const std::vector<OpType>& JoinOps() {
  static const std::vector<OpType> kOps = {OpType::kHashJoin, OpType::kMergeJoin,
                                           OpType::kNestedLoopJoin};
  return kOps;
}

uint64_t PlanNode::RelMask() const {
  if (is_leaf()) return rel >= 0 ? (uint64_t{1} << rel) : 0;
  uint64_t mask = 0;
  if (left) mask |= left->RelMask();
  if (right) mask |= right->RelMask();
  return mask;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto node = std::make_unique<PlanNode>();
  node->op = op;
  node->rel = rel;
  node->join_preds = join_preds;
  node->estimated = estimated;
  node->actual = actual;
  if (left) node->left = left->Clone();
  if (right) node->right = right->Clone();
  return node;
}

void PlanNode::PostOrder(const std::function<void(const PlanNode&)>& fn) const {
  if (left) left->PostOrder(fn);
  if (right) right->PostOrder(fn);
  fn(*this);
}

void PlanNode::PostOrderMutable(const std::function<void(PlanNode&)>& fn) {
  if (left) left->PostOrderMutable(fn);
  if (right) right->PostOrderMutable(fn);
  fn(*this);
}

int PlanNode::NumNodes() const {
  int n = 1;
  if (left) n += left->NumNodes();
  if (right) n += right->NumNodes();
  return n;
}

namespace {

void RenderNode(const PlanNode& node, const storage::Database& db, const Query& q,
                bool with_actual, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << "-> " << OpTypeName(node.op);
  if (node.is_leaf() && node.rel >= 0) {
    const auto& ref = q.relations[static_cast<size_t>(node.rel)];
    *os << " on " << db.table(ref.table_id).name() << " " << ref.alias;
  }
  *os << StrFormat("  (rows=%.0f cost=%.1f time=%.2fms)", node.estimated.cardinality,
                   node.estimated.cost, node.estimated.runtime_ms);
  if (with_actual) {
    *os << StrFormat("  [actual rows=%.0f cost=%.1f time=%.2fms]",
                     node.actual.cardinality, node.actual.cost, node.actual.runtime_ms);
  }
  *os << "\n";
  if (node.left) RenderNode(*node.left, db, q, with_actual, depth + 1, os);
  if (node.right) RenderNode(*node.right, db, q, with_actual, depth + 1, os);
}

}  // namespace

std::string PlanNode::ToString(const storage::Database& db, const Query& q,
                               bool with_actual) const {
  std::ostringstream os;
  RenderNode(*this, db, q, with_actual, 0, &os);
  return os.str();
}

PlanPtr BuildLeftDeepPlan(const Query& q, const std::vector<int>& order,
                          const std::vector<OpType>& scan_ops,
                          const std::vector<OpType>& join_ops) {
  QPS_CHECK(order.size() == scan_ops.size());
  QPS_CHECK(order.empty() || join_ops.size() == order.size() - 1);
  if (order.empty()) return nullptr;

  auto make_scan = [&](size_t i) {
    auto leaf = std::make_unique<PlanNode>();
    leaf->op = scan_ops[i];
    leaf->rel = order[i];
    return leaf;
  };

  PlanPtr cur = make_scan(0);
  uint64_t mask = uint64_t{1} << order[0];
  for (size_t i = 1; i < order.size(); ++i) {
    auto join = std::make_unique<PlanNode>();
    join->op = join_ops[i - 1];
    // Attach every join predicate connecting the accumulated left side to
    // the newly added relation.
    for (size_t p = 0; p < q.joins.size(); ++p) {
      const auto& jp = q.joins[p];
      const bool connects =
          ((mask >> jp.left_rel) & 1 && jp.right_rel == order[i]) ||
          ((mask >> jp.right_rel) & 1 && jp.left_rel == order[i]);
      if (connects) join->join_preds.push_back(static_cast<int>(p));
    }
    if (join->join_preds.empty()) return nullptr;  // would be a cross product
    join->left = std::move(cur);
    join->right = make_scan(i);
    cur = std::move(join);
    mask |= uint64_t{1} << order[i];
  }
  return cur;
}

PlanPtr BuildRandomBushyPlan(const Query& q, Rng* rng) {
  const int n = q.num_relations();
  if (n == 0) return nullptr;
  struct Component {
    PlanPtr plan;
    uint64_t mask;
  };
  std::vector<Component> components;
  const auto& scan_ops = ScanOps();
  const auto& join_ops = JoinOps();
  for (int r = 0; r < n; ++r) {
    auto leaf = std::make_unique<PlanNode>();
    leaf->op = scan_ops[rng->UniformInt(scan_ops.size())];
    leaf->rel = r;
    components.push_back(Component{std::move(leaf), uint64_t{1} << r});
  }
  while (components.size() > 1) {
    // All component pairs connected by at least one join predicate.
    std::vector<std::pair<size_t, size_t>> joinable;
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = i + 1; j < components.size(); ++j) {
        for (const auto& jp : q.joins) {
          const bool crosses =
              (((components[i].mask >> jp.left_rel) & 1) &&
               ((components[j].mask >> jp.right_rel) & 1)) ||
              (((components[i].mask >> jp.right_rel) & 1) &&
               ((components[j].mask >> jp.left_rel) & 1));
          if (crosses) {
            joinable.emplace_back(i, j);
            break;
          }
        }
      }
    }
    if (joinable.empty()) return nullptr;  // disconnected query
    auto [a, b] = joinable[rng->UniformInt(joinable.size())];
    auto join = std::make_unique<PlanNode>();
    join->op = join_ops[rng->UniformInt(join_ops.size())];
    for (size_t p = 0; p < q.joins.size(); ++p) {
      const auto& jp = q.joins[p];
      const bool crosses = (((components[a].mask >> jp.left_rel) & 1) &&
                            ((components[b].mask >> jp.right_rel) & 1)) ||
                           (((components[a].mask >> jp.right_rel) & 1) &&
                            ((components[b].mask >> jp.left_rel) & 1));
      if (crosses) join->join_preds.push_back(static_cast<int>(p));
    }
    join->left = std::move(components[a].plan);
    join->right = std::move(components[b].plan);
    components[a].plan = std::move(join);
    components[a].mask |= components[b].mask;
    components.erase(components.begin() + static_cast<ptrdiff_t>(b));
  }
  return std::move(components[0].plan);
}

namespace {

void ExtendOrders(const Query& q, const std::vector<std::vector<int>>& adj,
                  std::vector<int>* order, uint64_t mask, size_t limit,
                  std::vector<std::vector<int>>* out) {
  if (out->size() >= limit) return;
  const int n = q.num_relations();
  if (static_cast<int>(order->size()) == n) {
    out->push_back(*order);
    return;
  }
  for (int r = 0; r < n; ++r) {
    if ((mask >> r) & 1) continue;
    // The next relation must connect to the current prefix (no x-products),
    // unless the query has no joins at all.
    bool connected = q.joins.empty();
    for (int nb : adj[static_cast<size_t>(r)]) {
      if ((mask >> nb) & 1) {
        connected = true;
        break;
      }
    }
    if (!connected && !order->empty()) continue;
    order->push_back(r);
    ExtendOrders(q, adj, order, mask | (uint64_t{1} << r), limit, out);
    order->pop_back();
    if (out->size() >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<int>> EnumerateJoinOrders(const Query& q, size_t limit) {
  std::vector<std::vector<int>> out;
  std::vector<int> order;
  ExtendOrders(q, q.JoinAdjacency(), &order, 0, limit, &out);
  return out;
}

bool StatsAreFinite(const NodeStats& stats) {
  return std::isfinite(stats.cardinality) && std::isfinite(stats.cost) &&
         std::isfinite(stats.runtime_ms);
}

namespace {

/// Walks the subtree, accumulating its relation mask and per-predicate use
/// counts. Returns non-OK on the first structural defect.
Status ValidateNode(const Query& q, const PlanNode& node, uint64_t* mask,
                    std::vector<int>* pred_uses) {
  const int n = q.num_relations();
  if ((node.left == nullptr) != (node.right == nullptr)) {
    return Status::InvalidArgument("plan node with exactly one child");
  }
  if (node.is_leaf()) {
    if (!IsScan(node.op)) {
      return Status::InvalidArgument(std::string("leaf with join operator ") +
                                     OpTypeName(node.op));
    }
    if (node.rel < 0 || node.rel >= n) {
      return Status::InvalidArgument("leaf with out-of-range relation " +
                                     std::to_string(node.rel));
    }
    if ((*mask >> node.rel) & 1) {
      return Status::InvalidArgument("relation " + std::to_string(node.rel) +
                                     " scanned twice");
    }
    *mask |= uint64_t{1} << node.rel;
    return Status::OK();
  }
  if (!IsJoin(node.op)) {
    return Status::InvalidArgument(std::string("join node with scan operator ") +
                                   OpTypeName(node.op));
  }
  uint64_t left_mask = 0, right_mask = 0;
  QPS_RETURN_IF_ERROR(ValidateNode(q, *node.left, &left_mask, pred_uses));
  QPS_RETURN_IF_ERROR(ValidateNode(q, *node.right, &right_mask, pred_uses));
  if ((left_mask & right_mask) != 0) {
    return Status::InvalidArgument("join children overlap in relations");
  }
  if (node.join_preds.empty()) {
    return Status::InvalidArgument("join without predicates (cross product)");
  }
  for (int p : node.join_preds) {
    if (p < 0 || p >= static_cast<int>(q.joins.size())) {
      return Status::InvalidArgument("join predicate index " + std::to_string(p) +
                                     " out of range");
    }
    const auto& jp = q.joins[static_cast<size_t>(p)];
    const bool connects =
        (((left_mask >> jp.left_rel) & 1) && ((right_mask >> jp.right_rel) & 1)) ||
        (((left_mask >> jp.right_rel) & 1) && ((right_mask >> jp.left_rel) & 1));
    if (!connects) {
      return Status::InvalidArgument("join predicate " + std::to_string(p) +
                                     " does not connect the node's subtrees");
    }
    (*pred_uses)[static_cast<size_t>(p)] += 1;
  }
  *mask = left_mask | right_mask;
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const Query& q, const PlanNode& plan) {
  // Fault point: lets pipeline tests exercise the invalid-plan rung without
  // hand-building a structurally broken tree.
  QPS_RETURN_IF_ERROR(fault::Check("plan.validate"));
  const int n = q.num_relations();
  if (n == 0) return Status::InvalidArgument("query has no relations");
  uint64_t mask = 0;
  std::vector<int> pred_uses(q.joins.size(), 0);
  QPS_RETURN_IF_ERROR(ValidateNode(q, plan, &mask, &pred_uses));
  const uint64_t full = n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  if (mask != full) {
    return Status::InvalidArgument("plan does not cover all query relations");
  }
  for (size_t p = 0; p < pred_uses.size(); ++p) {
    if (pred_uses[p] == 0) {
      return Status::InvalidArgument("query join predicate " + std::to_string(p) +
                                     " never applied");
    }
    if (pred_uses[p] > 1) {
      return Status::InvalidArgument("query join predicate " + std::to_string(p) +
                                     " applied more than once");
    }
  }
  return Status::OK();
}

}  // namespace query
}  // namespace qps
