// Copyright 2026 The QPSeeker Authors
//
// A parser for the SQL subset QPSeeker's workloads use (the same fragment
// MSCN/JOB-light queries live in): conjunctive SELECT COUNT(*) queries with
// equi-joins and constant comparisons.
//
//   SELECT COUNT(*) FROM title t, movie_info mi
//   WHERE t.id = mi.movie_id AND t.production_year > 50 AND mi.info_hash = 3;

#ifndef QPS_QUERY_PARSER_H_
#define QPS_QUERY_PARSER_H_

#include <string>

#include "query/query.h"
#include "util/status.h"

namespace qps {
namespace query {

/// Parses `sql` against `db`'s catalog. Returns InvalidArgument with a
/// position-annotated message on syntax or binding errors.
StatusOr<Query> ParseSql(const std::string& sql, const storage::Database& db);

}  // namespace query
}  // namespace qps

#endif  // QPS_QUERY_PARSER_H_
