// Copyright 2026 The QPSeeker Authors

#include "query/parser.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace qps {
namespace query {

namespace {

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  StatusOr<Token> Next() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    Token tok;
    tok.pos = pos_;
    if (pos_ >= in_.size()) return tok;
    const char c = in_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_')) {
        ++pos_;
      }
      tok.kind = TokKind::kIdent;
      tok.text = StrLower(in_.substr(start, pos_ - start));
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < in_.size() &&
         std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < in_.size() &&
             (std::isdigit(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '.')) {
        ++pos_;
      }
      // Scientific notation ("1e+308", "2.5E-3"): accepted so extreme
      // literals written by Value::ToString round-trip through the parser.
      if (pos_ < in_.size() && (in_[pos_] == 'e' || in_[pos_] == 'E')) {
        size_t exp = pos_ + 1;
        if (exp < in_.size() && (in_[exp] == '+' || in_[exp] == '-')) ++exp;
        if (exp < in_.size() && std::isdigit(static_cast<unsigned char>(in_[exp]))) {
          pos_ = exp + 1;
          while (pos_ < in_.size() &&
                 std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
            ++pos_;
          }
        }
      }
      tok.kind = TokKind::kNumber;
      tok.text = in_.substr(start, pos_ - start);
      return tok;
    }
    if (c == '\'') {
      size_t start = ++pos_;
      while (pos_ < in_.size() && in_[pos_] != '\'') ++pos_;
      if (pos_ >= in_.size()) {
        return Status::InvalidArgument(
            StrFormat("unterminated string at %zu", start));
      }
      tok.kind = TokKind::kString;
      tok.text = in_.substr(start, pos_ - start);
      ++pos_;
      return tok;
    }
    // Multi-char comparison operators.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    for (const char* op : kTwoChar) {
      if (in_.compare(pos_, 2, op) == 0) {
        tok.kind = TokKind::kSymbol;
        tok.text = op;
        pos_ += 2;
        return tok;
      }
    }
    tok.kind = TokKind::kSymbol;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  }

 private:
  const std::string& in_;
  size_t pos_ = 0;
};

struct ColumnRef {
  int rel = -1;
  int column = -1;
};

class Parser {
 public:
  Parser(const std::string& sql, const storage::Database& db) : lexer_(sql), db_(db) {}

  StatusOr<Query> Parse() {
    QPS_RETURN_IF_ERROR(Advance());
    QPS_RETURN_IF_ERROR(ExpectIdent("select"));
    // Accept COUNT(*) or *.
    if (cur_.kind == TokKind::kIdent && cur_.text == "count") {
      QPS_RETURN_IF_ERROR(Advance());
      QPS_RETURN_IF_ERROR(ExpectSymbol("("));
      QPS_RETURN_IF_ERROR(ExpectSymbol("*"));
      QPS_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      QPS_RETURN_IF_ERROR(ExpectSymbol("*"));
    }
    QPS_RETURN_IF_ERROR(ExpectIdent("from"));
    QPS_RETURN_IF_ERROR(ParseFromList());
    if (cur_.kind == TokKind::kIdent && cur_.text == "where") {
      QPS_RETURN_IF_ERROR(Advance());
      QPS_RETURN_IF_ERROR(ParseConjunction());
    }
    if (cur_.kind == TokKind::kSymbol && cur_.text == ";") {
      QPS_RETURN_IF_ERROR(Advance());
    }
    if (cur_.kind != TokKind::kEnd) {
      return Status::InvalidArgument(
          StrFormat("trailing input at %zu: '%s'", cur_.pos, cur_.text.c_str()));
    }
    // Defense in depth at the parse boundary: everything above binds
    // against the catalog already, but a parsed query must also pass the
    // same validation the planner entry points enforce.
    QPS_RETURN_IF_ERROR(query_.Validate(db_));
    return std::move(query_);
  }

 private:
  Status Advance() {
    QPS_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Status ExpectIdent(const std::string& kw) {
    if (cur_.kind != TokKind::kIdent || cur_.text != kw) {
      return Status::InvalidArgument(
          StrFormat("expected '%s' at %zu, got '%s'", kw.c_str(), cur_.pos,
                    cur_.text.c_str()));
    }
    return Advance();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (cur_.kind != TokKind::kSymbol || cur_.text != sym) {
      return Status::InvalidArgument(
          StrFormat("expected '%s' at %zu, got '%s'", sym.c_str(), cur_.pos,
                    cur_.text.c_str()));
    }
    return Advance();
  }

  Status ParseFromList() {
    while (true) {
      if (cur_.kind != TokKind::kIdent) {
        return Status::InvalidArgument(
            StrFormat("expected table name at %zu", cur_.pos));
      }
      const int table_id = db_.TableIndex(cur_.text);
      if (table_id < 0) {
        return Status::NotFound("unknown table: " + cur_.text);
      }
      RelationRef ref;
      ref.table_id = table_id;
      ref.alias = cur_.text;
      QPS_RETURN_IF_ERROR(Advance());
      // Optional alias (identifier that is not WHERE).
      if (cur_.kind == TokKind::kIdent && cur_.text != "where") {
        ref.alias = cur_.text;
        QPS_RETURN_IF_ERROR(Advance());
      }
      for (const auto& existing : query_.relations) {
        if (existing.alias == ref.alias) {
          return Status::AlreadyExists("duplicate alias: " + ref.alias);
        }
      }
      query_.relations.push_back(ref);
      if (cur_.kind == TokKind::kSymbol && cur_.text == ",") {
        QPS_RETURN_IF_ERROR(Advance());
        continue;
      }
      return Status::OK();
    }
  }

  Status ParseConjunction() {
    while (true) {
      QPS_RETURN_IF_ERROR(ParsePredicate());
      if (cur_.kind == TokKind::kIdent && cur_.text == "and") {
        QPS_RETURN_IF_ERROR(Advance());
        continue;
      }
      return Status::OK();
    }
  }

  StatusOr<ColumnRef> ParseColumnRef() {
    if (cur_.kind != TokKind::kIdent) {
      return Status::InvalidArgument(StrFormat("expected column ref at %zu", cur_.pos));
    }
    const std::string alias = cur_.text;
    QPS_RETURN_IF_ERROR(Advance());
    QPS_RETURN_IF_ERROR(ExpectSymbol("."));
    if (cur_.kind != TokKind::kIdent) {
      return Status::InvalidArgument(StrFormat("expected column name at %zu", cur_.pos));
    }
    const std::string col = cur_.text;
    QPS_RETURN_IF_ERROR(Advance());
    ColumnRef ref;
    for (size_t i = 0; i < query_.relations.size(); ++i) {
      if (query_.relations[i].alias == alias) {
        ref.rel = static_cast<int>(i);
        break;
      }
    }
    if (ref.rel < 0) return Status::NotFound("unknown alias: " + alias);
    const auto& table = db_.table(query_.relations[static_cast<size_t>(ref.rel)].table_id);
    ref.column = table.ColumnIndex(col);
    if (ref.column < 0) {
      return Status::NotFound("unknown column: " + alias + "." + col);
    }
    return ref;
  }

  static std::optional<storage::CompareOp> ToCompareOp(const std::string& s) {
    using storage::CompareOp;
    if (s == "=") return CompareOp::kEq;
    if (s == "<>" || s == "!=") return CompareOp::kNe;
    if (s == "<") return CompareOp::kLt;
    if (s == "<=") return CompareOp::kLe;
    if (s == ">") return CompareOp::kGt;
    if (s == ">=") return CompareOp::kGe;
    return std::nullopt;
  }

  Status ParsePredicate() {
    QPS_ASSIGN_OR_RETURN(ColumnRef lhs, ParseColumnRef());
    if (cur_.kind != TokKind::kSymbol) {
      return Status::InvalidArgument(StrFormat("expected operator at %zu", cur_.pos));
    }
    const auto op = ToCompareOp(cur_.text);
    if (!op.has_value()) {
      return Status::InvalidArgument("unsupported operator: " + cur_.text);
    }
    QPS_RETURN_IF_ERROR(Advance());

    if (cur_.kind == TokKind::kIdent) {
      // Join predicate: alias.column = alias.column (equality only).
      if (*op != storage::CompareOp::kEq) {
        return Status::NotImplemented("non-equi joins are not supported");
      }
      QPS_ASSIGN_OR_RETURN(ColumnRef rhs, ParseColumnRef());
      JoinPredicate jp;
      jp.left_rel = lhs.rel;
      jp.left_column = lhs.column;
      jp.right_rel = rhs.rel;
      jp.right_column = rhs.column;
      jp.schema_edge = db_.FindJoinEdge(
          query_.relations[static_cast<size_t>(lhs.rel)].table_id, lhs.column,
          query_.relations[static_cast<size_t>(rhs.rel)].table_id, rhs.column);
      query_.joins.push_back(jp);
      return Status::OK();
    }

    FilterPredicate fp;
    fp.rel = lhs.rel;
    fp.column = lhs.column;
    fp.op = *op;
    const auto& table = db_.table(query_.relations[static_cast<size_t>(lhs.rel)].table_id);
    const auto& column = table.column(lhs.column);
    if (cur_.kind == TokKind::kNumber) {
      // strtod/strtoll instead of the std::sto* family: hostile literals
      // ("1e99999", 20-digit ints) must yield a Status, not an exception.
      errno = 0;
      if (column.type() == storage::DataType::kFloat64) {
        char* end = nullptr;
        const double d = std::strtod(cur_.text.c_str(), &end);
        if (errno == ERANGE || !std::isfinite(d)) {
          return Status::InvalidArgument("float literal out of range: " + cur_.text);
        }
        fp.value = storage::Value::Float(d);
      } else if (column.type() == storage::DataType::kString) {
        return Status::InvalidArgument("numeric literal on string column " +
                                       column.name());
      } else {
        char* end = nullptr;
        const long long v = std::strtoll(cur_.text.c_str(), &end, 10);
        if (errno == ERANGE || end == nullptr || *end != '\0') {
          return Status::InvalidArgument("integer literal out of range: " +
                                         cur_.text);
        }
        fp.value = storage::Value::Int(v);
      }
    } else if (cur_.kind == TokKind::kString) {
      if (column.type() != storage::DataType::kString) {
        return Status::InvalidArgument("string literal on non-string column " +
                                       column.name());
      }
      storage::Value v = storage::Value::Str(cur_.text);
      v.i = column.LookupDictCode(cur_.text);  // -1 if absent: matches nothing on =
      fp.value = v;
    } else {
      return Status::InvalidArgument(StrFormat("expected literal at %zu", cur_.pos));
    }
    QPS_RETURN_IF_ERROR(Advance());
    query_.filters.push_back(fp);
    return Status::OK();
  }

  Lexer lexer_;
  const storage::Database& db_;
  Token cur_;
  Query query_;
};

}  // namespace

StatusOr<Query> ParseSql(const std::string& sql, const storage::Database& db) {
  static metrics::Counter* const parsed_counter =
      metrics::Registry::Global().GetCounter("qps.parser.queries");
  QPS_TRACE_SPAN("parse.sql");
  parsed_counter->Increment();
  Parser parser(sql, db);
  return parser.Parse();
}

}  // namespace query
}  // namespace qps
