// Copyright 2026 The QPSeeker Authors
//
// Physical execution plans: binary trees whose leaves are scans over the
// query's relations and whose internal nodes are joins (paper §3.1). Plans
// carry both estimated statistics (from an optimizer or learned model) and
// true statistics (from the executor) for each node — a node's triple
// (cardinality, cost, runtime) is exactly what QPSeeker learns to predict.

#ifndef QPS_QUERY_PLAN_H_
#define QPS_QUERY_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "query/query.h"
#include "util/rng.h"
#include "util/status.h"

namespace qps {
namespace query {

/// Physical operators (PostgreSQL's core set, as sampled in paper §5.1).
enum class OpType {
  kSeqScan,
  kIndexScan,
  kBitmapIndexScan,
  kHashJoin,
  kMergeJoin,
  kNestedLoopJoin,
};

constexpr int kNumOpTypes = 6;

bool IsScan(OpType op);
bool IsJoin(OpType op);
const char* OpTypeName(OpType op);

/// All scan / join operator alternatives (used by plan samplers).
const std::vector<OpType>& ScanOps();
const std::vector<OpType>& JoinOps();

/// Per-node statistics triple. Costs are in abstract cost units, runtimes
/// in milliseconds, cardinalities in rows.
struct NodeStats {
  double cardinality = 0.0;
  double cost = 0.0;
  double runtime_ms = 0.0;
};

/// A node of a physical plan tree.
struct PlanNode {
  OpType op = OpType::kSeqScan;
  int rel = -1;                  ///< scans: relation index in the query
  std::vector<int> join_preds;   ///< joins: indexes into Query::joins
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  NodeStats estimated;  ///< optimizer / learned-model estimates
  NodeStats actual;     ///< ground truth from the executor

  /// Bitmask of relation indices covered by this subtree.
  uint64_t RelMask() const;

  bool is_leaf() const { return left == nullptr && right == nullptr; }

  std::unique_ptr<PlanNode> Clone() const;

  /// Post-order traversal (children before parents), the order in which the
  /// plan encoder and executor process nodes.
  void PostOrder(const std::function<void(const PlanNode&)>& fn) const;
  void PostOrderMutable(const std::function<void(PlanNode&)>& fn);

  /// Number of nodes in the subtree.
  int NumNodes() const;

  /// EXPLAIN-style indented rendering.
  std::string ToString(const storage::Database& db, const Query& q,
                       bool with_actual = false) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Builds a left-deep plan from a join order (relation indices) plus an
/// operator choice per position: scan_ops[i] for relation order[i], and
/// join_ops[i-1] for the join adding order[i] (i >= 1). Join predicates are
/// resolved automatically: every query join with one side already in the
/// left subtree and the other equal to the added relation is attached.
/// Returns nullptr if some join step has no connecting predicate (would be
/// a cross product).
PlanPtr BuildLeftDeepPlan(const Query& q, const std::vector<int>& order,
                          const std::vector<OpType>& scan_ops,
                          const std::vector<OpType>& join_ops);

/// Builds a uniformly random *bushy* plan by repeatedly joining two
/// connected components with random operators (extension beyond the
/// paper's left-deep sampling; the executor runs arbitrary shapes).
/// Returns nullptr for disconnected queries.
PlanPtr BuildRandomBushyPlan(const Query& q, Rng* rng);

/// Enumerates all connected left-deep join orders (permutations where each
/// prefix is connected in the join graph). Caps output at `limit` orders.
std::vector<std::vector<int>> EnumerateJoinOrders(const Query& q, size_t limit);

/// All three fields are finite (no NaN/inf from a misbehaving model).
bool StatsAreFinite(const NodeStats& stats);

/// Structural validation of a physical plan against its query, the guard
/// the planning pipeline runs before trusting any (possibly neural) plan:
///   - the tree is well-formed (leaves are scan ops with a valid relation,
///     internal nodes are join ops with both children),
///   - every query relation is covered by exactly one leaf,
///   - every join node carries at least one predicate, each predicate index
///     is valid and actually connects the node's two subtrees,
///   - every query join predicate is applied exactly once in the tree.
/// Returns OK or InvalidArgument with a description of the first defect.
Status ValidatePlan(const Query& q, const PlanNode& plan);

}  // namespace query
}  // namespace qps

#endif  // QPS_QUERY_PLAN_H_
