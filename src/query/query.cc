// Copyright 2026 The QPSeeker Authors

#include "query/query.h"

#include <functional>

#include "util/string_util.h"

namespace qps {
namespace query {

std::vector<FilterPredicate> Query::FiltersFor(int rel) const {
  std::vector<FilterPredicate> out;
  for (const auto& f : filters) {
    if (f.rel == rel) out.push_back(f);
  }
  return out;
}

std::vector<std::vector<int>> Query::JoinAdjacency() const {
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_relations()));
  for (const auto& j : joins) {
    adj[static_cast<size_t>(j.left_rel)].push_back(j.right_rel);
    adj[static_cast<size_t>(j.right_rel)].push_back(j.left_rel);
  }
  return adj;
}

bool Query::IsConnected() const {
  const int n = num_relations();
  if (n <= 1) return true;
  auto adj = JoinAdjacency();
  std::vector<bool> seen(static_cast<size_t>(n), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (int next : adj[static_cast<size_t>(cur)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        ++count;
        stack.push_back(next);
      }
    }
  }
  return count == n;
}

std::string Query::ToSql(const storage::Database& db) const {
  std::vector<std::string> from;
  for (const auto& r : relations) {
    from.push_back(db.table(r.table_id).name() + " " + r.alias);
  }
  std::vector<std::string> where;
  for (const auto& j : joins) {
    const auto& lt = db.table(relations[static_cast<size_t>(j.left_rel)].table_id);
    const auto& rt = db.table(relations[static_cast<size_t>(j.right_rel)].table_id);
    where.push_back(StrFormat(
        "%s.%s = %s.%s", relations[static_cast<size_t>(j.left_rel)].alias.c_str(),
        lt.column(j.left_column).name().c_str(),
        relations[static_cast<size_t>(j.right_rel)].alias.c_str(),
        rt.column(j.right_column).name().c_str()));
  }
  for (const auto& f : filters) {
    const auto& t = db.table(relations[static_cast<size_t>(f.rel)].table_id);
    where.push_back(StrFormat("%s.%s %s %s",
                              relations[static_cast<size_t>(f.rel)].alias.c_str(),
                              t.column(f.column).name().c_str(),
                              storage::CompareOpSymbol(f.op),
                              f.value.ToString().c_str()));
  }
  std::string sql = "SELECT COUNT(*) FROM " + StrJoin(from, ", ");
  if (!where.empty()) sql += " WHERE " + StrJoin(where, " AND ");
  return sql + ";";
}

}  // namespace query
}  // namespace qps
