// Copyright 2026 The QPSeeker Authors

#include "query/query.h"

#include <cmath>
#include <functional>
#include <unordered_set>

#include "util/string_util.h"

namespace qps {
namespace query {

std::vector<FilterPredicate> Query::FiltersFor(int rel) const {
  std::vector<FilterPredicate> out;
  for (const auto& f : filters) {
    if (f.rel == rel) out.push_back(f);
  }
  return out;
}

std::vector<std::vector<int>> Query::JoinAdjacency() const {
  const int n = num_relations();
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (const auto& j : joins) {
    if (j.left_rel < 0 || j.left_rel >= n || j.right_rel < 0 ||
        j.right_rel >= n || j.left_rel == j.right_rel) {
      continue;  // degenerate predicate: no edge rather than UB
    }
    adj[static_cast<size_t>(j.left_rel)].push_back(j.right_rel);
    adj[static_cast<size_t>(j.right_rel)].push_back(j.left_rel);
  }
  return adj;
}

bool Query::IsConnected() const {
  const int n = num_relations();
  if (n == 0) return false;
  if (n == 1) return true;
  auto adj = JoinAdjacency();
  std::vector<bool> seen(static_cast<size_t>(n), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (int next : adj[static_cast<size_t>(cur)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        ++count;
        stack.push_back(next);
      }
    }
  }
  return count == n;
}

Status Query::ValidateStructure() const {
  const int n = num_relations();
  std::unordered_set<std::string> aliases;
  for (int r = 0; r < n; ++r) {
    const RelationRef& ref = relations[static_cast<size_t>(r)];
    if (ref.alias.empty()) {
      return Status::InvalidArgument(StrFormat("relation %d has no alias", r));
    }
    if (!aliases.insert(ref.alias).second) {
      return Status::InvalidArgument("duplicate alias: " + ref.alias);
    }
  }
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinPredicate& j = joins[i];
    if (j.left_rel < 0 || j.left_rel >= n || j.right_rel < 0 ||
        j.right_rel >= n) {
      return Status::InvalidArgument(
          StrFormat("join %zu references relation %d/%d outside [0, %d)", i,
                    j.left_rel, j.right_rel, n));
    }
    if (j.left_rel == j.right_rel) {
      return Status::InvalidArgument(StrFormat(
          "join %zu relates relation instance %d to itself", i, j.left_rel));
    }
    if (j.left_column < 0 || j.right_column < 0) {
      return Status::InvalidArgument(
          StrFormat("join %zu has a negative column index", i));
    }
  }
  for (size_t i = 0; i < filters.size(); ++i) {
    const FilterPredicate& f = filters[i];
    if (f.rel < 0 || f.rel >= n) {
      return Status::InvalidArgument(StrFormat(
          "filter %zu references relation %d outside [0, %d)", i, f.rel, n));
    }
    if (f.column < 0) {
      return Status::InvalidArgument(
          StrFormat("filter %zu has a negative column index", i));
    }
  }
  return Status::OK();
}

namespace {

/// Strings only compare against strings; the two numeric types intermix.
bool TypeClassesMatch(storage::DataType a, storage::DataType b) {
  const bool a_str = a == storage::DataType::kString;
  const bool b_str = b == storage::DataType::kString;
  return a_str == b_str;
}

}  // namespace

Status Query::Validate(const storage::Database& db) const {
  QPS_RETURN_IF_ERROR(ValidateStructure());
  for (size_t r = 0; r < relations.size(); ++r) {
    const int table_id = relations[r].table_id;
    if (table_id < 0 || table_id >= db.num_tables()) {
      return Status::InvalidArgument(
          StrFormat("relation %zu: table id %d outside [0, %d)", r, table_id,
                    db.num_tables()));
    }
  }
  const auto column_ok = [&](int rel, int column) {
    const auto& table =
        db.table(relations[static_cast<size_t>(rel)].table_id);
    return column < table.num_columns();
  };
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinPredicate& j = joins[i];
    if (!column_ok(j.left_rel, j.left_column) ||
        !column_ok(j.right_rel, j.right_column)) {
      return Status::InvalidArgument(
          StrFormat("join %zu references a column outside its table", i));
    }
    const auto& lt = db.table(relations[static_cast<size_t>(j.left_rel)].table_id);
    const auto& rt = db.table(relations[static_cast<size_t>(j.right_rel)].table_id);
    if (!TypeClassesMatch(lt.column(j.left_column).type(),
                          rt.column(j.right_column).type())) {
      return Status::InvalidArgument(
          StrFormat("join %zu compares a string column with a numeric one", i));
    }
  }
  for (size_t i = 0; i < filters.size(); ++i) {
    const FilterPredicate& f = filters[i];
    if (!column_ok(f.rel, f.column)) {
      return Status::InvalidArgument(
          StrFormat("filter %zu references a column outside its table", i));
    }
    const auto& table = db.table(relations[static_cast<size_t>(f.rel)].table_id);
    if (!TypeClassesMatch(table.column(f.column).type(), f.value.type)) {
      return Status::InvalidArgument(
          StrFormat("filter %zu: %s literal on %s column %s", i,
                    storage::DataTypeName(f.value.type),
                    storage::DataTypeName(table.column(f.column).type()),
                    table.column(f.column).name().c_str()));
    }
    if (f.value.type == storage::DataType::kFloat64 &&
        !std::isfinite(f.value.d)) {
      return Status::InvalidArgument(
          StrFormat("filter %zu: non-finite literal", i));
    }
  }
  return Status::OK();
}

std::string Query::ToSql(const storage::Database& db) const {
  std::vector<std::string> from;
  for (const auto& r : relations) {
    from.push_back(db.table(r.table_id).name() + " " + r.alias);
  }
  std::vector<std::string> where;
  for (const auto& j : joins) {
    const auto& lt = db.table(relations[static_cast<size_t>(j.left_rel)].table_id);
    const auto& rt = db.table(relations[static_cast<size_t>(j.right_rel)].table_id);
    where.push_back(StrFormat(
        "%s.%s = %s.%s", relations[static_cast<size_t>(j.left_rel)].alias.c_str(),
        lt.column(j.left_column).name().c_str(),
        relations[static_cast<size_t>(j.right_rel)].alias.c_str(),
        rt.column(j.right_column).name().c_str()));
  }
  for (const auto& f : filters) {
    const auto& t = db.table(relations[static_cast<size_t>(f.rel)].table_id);
    where.push_back(StrFormat("%s.%s %s %s",
                              relations[static_cast<size_t>(f.rel)].alias.c_str(),
                              t.column(f.column).name().c_str(),
                              storage::CompareOpSymbol(f.op),
                              f.value.ToString().c_str()));
  }
  std::string sql = "SELECT COUNT(*) FROM " + StrJoin(from, ", ");
  if (!where.empty()) sql += " WHERE " + StrJoin(where, " AND ");
  return sql + ";";
}

}  // namespace query
}  // namespace qps
