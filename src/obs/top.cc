// Copyright 2026 The QPSeeker Authors

#include "obs/top.h"

#include <cstdio>

#include "util/string_util.h"

namespace qps {
namespace obs {

namespace {

double CounterValue(const JsonValue& doc, const std::string& name) {
  const JsonValue* counters = doc.FindPath("metrics.counters");
  return counters != nullptr ? counters->NumberOr(name, 0.0) : 0.0;
}

double GaugeValue(const JsonValue& doc, const std::string& name) {
  const JsonValue* gauges = doc.FindPath("metrics.gauges");
  return gauges != nullptr ? gauges->NumberOr(name, 0.0) : 0.0;
}

const JsonValue* WindowHist(const JsonValue& doc, const std::string& name) {
  const JsonValue* hists = doc.FindPath("window.histograms");
  return hists != nullptr ? hists->Find(name) : nullptr;
}

const JsonValue* WindowCounter(const JsonValue& doc, const std::string& name) {
  const JsonValue* counters = doc.FindPath("window.counters");
  return counters != nullptr ? counters->Find(name) : nullptr;
}

}  // namespace

std::string FormatTopBoard(const JsonValue& cur, const JsonValue* prev,
                           double poll_s) {
  std::string out;

  // Throughput: the inter-poll delta of the cumulative request counter
  // when a previous snapshot exists, else the sliding-window rate.
  double qps = 0.0;
  const char* qps_src = "window";
  if (prev != nullptr && poll_s > 0.0) {
    qps = (CounterValue(cur, "qps.serve.requests") -
           CounterValue(*prev, "qps.serve.requests")) /
          poll_s;
    qps_src = "delta";
  } else if (const JsonValue* wc = WindowCounter(cur, "qps.serve.requests")) {
    qps = wc->NumberOr("rate", 0.0);
  }

  out += StrFormat("qps_top — snapshot #%lld  (ts %.1f s)\n",
                   static_cast<long long>(cur.NumberOr("seq", 0)),
                   cur.NumberOr("ts_ms", 0) / 1000.0);
  out += StrFormat(
      "serving   %8.1f req/s (%s)   inflight %3.0f   queue %3.0f\n", qps,
      qps_src, GaugeValue(cur, "qps.serve.inflight"),
      GaugeValue(cur, "qps.serve.queue_depth"));
  out += StrFormat(
      "lifetime  %8.0f requests   shed %.0f   deadline misses %.0f\n",
      CounterValue(cur, "qps.serve.requests"),
      CounterValue(cur, "qps.serve.shed"),
      CounterValue(cur, "qps.serve.deadline_misses"));

  if (const JsonValue* lat = WindowHist(cur, "qps.serve.latency_ms")) {
    out += StrFormat(
        "latency   p50 %8.2f ms   p90 %8.2f ms   p99 %8.2f ms   (window, "
        "n=%.0f)\n",
        lat->NumberOr("p50", 0), lat->NumberOr("p90", 0),
        lat->NumberOr("p99", 0), lat->NumberOr("count", 0));
  }
  if (const JsonValue* queue = WindowHist(cur, "qps.serve.queue_ms")) {
    out += StrFormat("queue     p50 %8.2f ms   p99 %8.2f ms\n",
                     queue->NumberOr("p50", 0), queue->NumberOr("p99", 0));
  }

  // Ladder-stage mix over the window, plus the breaker level.
  const JsonValue* neural = WindowCounter(cur, "qps.guarded.stage.neural");
  const JsonValue* greedy = WindowCounter(cur, "qps.guarded.stage.greedy");
  const JsonValue* traditional =
      WindowCounter(cur, "qps.guarded.stage.traditional");
  if (neural != nullptr || greedy != nullptr || traditional != nullptr) {
    auto total = [](const JsonValue* v) {
      return v != nullptr ? v->NumberOr("total", 0.0) : 0.0;
    };
    out += StrFormat(
        "ladder    neural %5.0f   greedy %5.0f   traditional %5.0f   "
        "(window)   breaker %s\n",
        total(neural), total(greedy), total(traditional),
        GaugeValue(cur, "qps.guarded.circuit_open") > 0.5 ? "OPEN" : "closed");
  }

  if (const JsonValue* drift = cur.Find("drift")) {
    const bool drifted = [&] {
      const JsonValue* d = drift->Find("drifted");
      return d != nullptr && d->type() == JsonValue::Type::kBool &&
             d->boolean();
    }();
    out += StrFormat(
        "accuracy  q-error p50 %6.2f  p95 %6.2f   drift score %5.2f%s   "
        "(n=%.0f)\n",
        drift->NumberOr("qerr_p50", 0), drift->NumberOr("qerr_p95", 0),
        drift->NumberOr("score", 0), drifted ? "  ** DRIFT **" : "",
        drift->NumberOr("samples", 0));
  }

  const double batch_flushes = CounterValue(cur, "qps.serve.batch_plans");
  if (batch_flushes > 0) {
    out += StrFormat("batching  %8.0f plans fused\n", batch_flushes);
  }
  return out;
}

}  // namespace obs
}  // namespace qps
