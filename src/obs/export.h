// Copyright 2026 The QPSeeker Authors
//
// Export surface for the observability layer (DESIGN.md §13):
//
//  * Prometheus text exposition (version 0.0.4) of the full metrics
//    registry — counters, gauges, and histograms with correct cumulative
//    `le` bucket semantics — plus the windowed view as gauges. Metric
//    names translate dots to underscores (`qps.serve.latency_ms` ->
//    `qps_serve_latency_ms`); histogram series carry the standard
//    `_bucket{le=...}` / `_sum` / `_count` suffixes.
//
//  * RenderObsJson: one self-describing JSON document combining the
//    cumulative registry, the windowed snapshot, and the drift report —
//    the wire format qps_top polls.
//
//  * SnapshotWriter: a background thread that refreshes the drift gauges
//    (AccuracyTracker::Update) and atomically rewrites a JSON snapshot
//    file every `interval_ms` (io::AtomicWriteFile, so a reader never
//    sees a torn document).
//
// ParsePrometheus is the test-facing inverse of RenderPrometheus: it
// parses samples back into (name, labels, value) triples so the
// round-trip test can assert exact equality with the snapshot.

#ifndef QPS_OBS_EXPORT_H_
#define QPS_OBS_EXPORT_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/window.h"
#include "util/metrics.h"
#include "util/status.h"

namespace qps {
namespace obs {

/// Prometheus text exposition of the cumulative registry; when `window` is
/// non-null its rates and sliding percentiles are appended as gauges
/// (suffixes `_window_rate`, `_window_total`, `_window_p50/p90/p99`).
std::string RenderPrometheus(const metrics::Snapshot& snapshot,
                             const WindowSnapshot* window = nullptr);

/// One parsed Prometheus sample: `name{label="value",...} 12.5`.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  /// "name" or `name{le="0.004"}` — the canonical key tests compare on.
  std::string Key() const;
};

/// Parses a text-exposition document (comment lines ignored).
/// kInvalidArgument on malformed sample lines.
StatusOr<std::vector<PromSample>> ParsePrometheus(const std::string& text);

/// The combined observability document:
/// {"ts_ms":..,"seq":..,"metrics":{...},          // metrics::RenderJson
///  "window":{"counters":{name:{"total","rate"}},
///            "histograms":{name:{"count","rate","p50","p90","p99"}}},
///  "drift":{"score","qerr_p50","qerr_p95","samples","drifted"}}
std::string RenderObsJson(int64_t seq);

/// Periodically writes RenderObsJson to `path`. Start() spawns the
/// thread; Stop() (and the destructor) joins it. One writer per path.
class SnapshotWriter {
 public:
  SnapshotWriter(std::string path, double interval_ms = 1000.0);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void Start();
  void Stop();

  /// Renders and writes one snapshot immediately (also used by the
  /// writer thread each tick). Refreshes the drift gauges first.
  Status WriteOnce();

  int64_t snapshots_written() const {
    return written_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  void Loop();

  std::string path_;
  double interval_ms_;
  std::atomic<int64_t> written_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace qps

#endif  // QPS_OBS_EXPORT_H_
