// Copyright 2026 The QPSeeker Authors
//
// Windowed metric aggregation for serving-time observability. The base
// registry (util/metrics.h) is cumulative-since-process-start: it answers
// "how many requests ever ran" but not "what was p99 latency over the last
// 30 seconds", which is the view a serving dashboard needs. WindowedCounter
// and WindowedHistogram close that gap with a time-bucketed ring: N slots
// of W milliseconds each (default 10 x 3000 ms = a 30 s sliding window).
//
// Hot path: one relaxed atomic load of the global enable flag, one clock
// read, and one-or-two relaxed atomic adds — no lock, no allocation. Slot
// rotation is claimed with a CAS on the slot's epoch; the winner zeroes the
// slot. A concurrent Record that lands between the claim and the zeroing
// can lose its sample — windowed values are approximate by design at slot
// boundaries (the cumulative registry stays exact). Readers merge the live
// slots into a point-in-time view; a slot whose epoch fell out of the
// window is skipped, so stale data ages out without a background thread.
//
// When windowed instrumentation is globally disabled
// (SetWindowedEnabled(false)), Increment/Record return after a single
// relaxed load — cheaper than a cumulative Counter::Increment, proven by
// BM_WindowedCounterDisabled in bench_micro (<= 2x counter cost is the
// acceptance bound; the measured path is strictly less work).

#ifndef QPS_OBS_WINDOW_H_
#define QPS_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/metrics.h"

namespace qps {
namespace obs {

/// Enables/disables every WindowedCounter/WindowedHistogram hot path at
/// once. On by default; hot loops that cannot afford the clock read flip it
/// off. The disabled path is one relaxed load + branch.
void SetWindowedEnabled(bool enabled);
bool WindowedEnabled();

struct WindowOptions {
  /// Ring slots. The window covers `slots * slot_width_ms` milliseconds.
  int slots = 10;
  double slot_width_ms = 3000.0;
  /// Injectable time source; nullptr = Clock::Default(). Tests substitute
  /// a ManualClock to drive rotation deterministically.
  const Clock* clock = nullptr;
};

/// Sliding-window event counter: Total() and RatePerSec() over the last
/// `slots * slot_width_ms` milliseconds. Thread-safe.
class WindowedCounter {
 public:
  explicit WindowedCounter(WindowOptions opts = {});

  void Increment(int64_t delta = 1);

  /// Sum over the live window (including the current partial slot).
  int64_t Total() const;

  /// Total() divided by the covered span: the window span once the ring is
  /// warm, the elapsed lifetime before that.
  double RatePerSec() const;

  double window_span_ms() const {
    return static_cast<double>(opts_.slots) * opts_.slot_width_ms;
  }

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> value{0};
  };

  const Clock& clock() const;
  int64_t EpochNow() const;

  WindowOptions opts_;
  std::vector<Slot> slots_;
  int64_t created_ns_ = 0;
};

/// Sliding-window latency histogram on the same bucket grid as
/// metrics::Histogram, yielding rolling p50/p90/p99 via SnapshotWindow().
/// Thread-safe; same rotation semantics as WindowedCounter.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(WindowOptions opts = {});

  void Record(double value_ms);

  /// Merges the live slots into one snapshot (name left empty); percentile
  /// queries go through metrics::HistogramSnapshot::Percentile.
  metrics::HistogramSnapshot SnapshotWindow() const;

  double Percentile(double p) const { return SnapshotWindow().Percentile(p); }
  int64_t Count() const { return SnapshotWindow().count; }

  /// Events per second over the covered span (see WindowedCounter).
  double RatePerSec() const;

  double window_span_ms() const {
    return static_cast<double>(opts_.slots) * opts_.slot_width_ms;
  }

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> buckets[metrics::Histogram::kNumBuckets + 1] = {};
    std::atomic<int64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};
  };

  const Clock& clock() const;
  int64_t EpochNow() const;
  double CoveredSeconds() const;

  WindowOptions opts_;
  std::vector<Slot> slots_;
  int64_t created_ns_ = 0;
};

/// Point-in-time copy of every windowed metric, for the export surface.
struct WindowSnapshot {
  struct CounterView {
    std::string name;
    int64_t total = 0;
    double rate_per_sec = 0.0;
  };
  struct HistogramView {
    std::string name;
    double rate_per_sec = 0.0;
    metrics::HistogramSnapshot hist;  ///< window-merged buckets
  };
  std::vector<CounterView> counters;
  std::vector<HistogramView> histograms;
};

/// Global name -> windowed metric table, mirroring metrics::Registry.
/// Pointers stay valid for the process lifetime; callers cache them in
/// function-local statics exactly like cumulative metrics. The first Get*
/// for a name fixes its WindowOptions.
class WindowRegistry {
 public:
  static WindowRegistry& Global();

  WindowedCounter* GetCounter(const std::string& name, WindowOptions opts = {});
  WindowedHistogram* GetHistogram(const std::string& name,
                                  WindowOptions opts = {});

  WindowSnapshot TakeSnapshot() const;

 private:
  WindowRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> counters_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> histograms_;
};

}  // namespace obs
}  // namespace qps

#endif  // QPS_OBS_WINDOW_H_
