// Copyright 2026 The QPSeeker Authors

#include "obs/audit.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "util/clock.h"
#include "util/metrics.h"

namespace qps {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string RenderAuditJson(const AuditRecord& record, double ts_ms) {
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(record.query_hash));
  std::string out = "{\"ts_ms\":" + Num(ts_ms);
  out += ",\"query_hash\":\"" + std::string(hash_hex) + "\"";
  out += ",\"backend\":\"" + JsonEscape(record.backend) + "\"";
  if (!record.tenant.empty()) {
    out += ",\"tenant\":\"" + JsonEscape(record.tenant) + "\"";
  }
  out += ",\"stage\":\"" + JsonEscape(record.stage) + "\"";
  out += ",\"outcome\":\"" + JsonEscape(record.outcome) + "\"";
  out += ",\"deadline_hit\":";
  out += record.deadline_hit ? "true" : "false";
  out += ",\"queue_ms\":" + Num(record.queue_ms);
  out += ",\"plan_ms\":" + Num(record.plan_ms);
  out += ",\"plans_evaluated\":" + std::to_string(record.plans_evaluated);
  out += ",\"fallback\":\"" + JsonEscape(record.fallback_reason) + "\"";
  if (!record.reason.empty()) {
    out += ",\"reason\":\"" + JsonEscape(record.reason) + "\"";
  }
  out += "}";
  return out;
}

AuditLog::AuditLog(std::string path) : path_(std::move(path)) {}

StatusOr<std::unique_ptr<AuditLog>> AuditLog::Open(const std::string& path) {
  std::unique_ptr<AuditLog> log(new AuditLog(path));
  log->file_.open(path, std::ios::out | std::ios::app);
  if (!log->file_) {
    return Status::IOError("audit log: cannot open " + path);
  }
  return log;
}

void AuditLog::Append(const AuditRecord& record) {
  static metrics::Counter* const records_counter =
      metrics::Registry::Global().GetCounter("qps.obs.audit_records");
  static metrics::Counter* const errors_counter =
      metrics::Registry::Global().GetCounter("qps.obs.audit_errors");
  const std::string line =
      RenderAuditJson(record, Clock::Default()->NowMillis()) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  file_ << line;
  file_.flush();
  if (file_) {
    written_ += 1;
    records_counter->Increment();
  } else {
    errors_counter->Increment();
    file_.clear();  // keep trying on later appends
  }
}

int64_t AuditLog::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

}  // namespace obs
}  // namespace qps
