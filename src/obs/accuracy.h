// Copyright 2026 The QPSeeker Authors
//
// Serving-time model-accuracy tracking. A learned planner must be judged
// continuously on live traffic (Delta / Reqo, PAPERS.md): this tracker
// samples served requests, pairs the model's predicted cost/cardinality
// with actuals from exec::Executor::ExplainAnalyze, and maintains rolling
// q-error quantiles per backend plus a drift score.
//
// Drift score definition (DESIGN.md §13): the tracker keeps an EWMA
// baseline of the windowed median cardinality q-error, seeded by the first
// Update(). Each Update() recomputes the current window's quantiles and
// reports
//
//   drift_score = window_qerr_p50 / max(baseline_qerr_p50, 1.0)
//
// so ~1.0 means "the model is as accurate as it has been", and a sustained
// label shift pushes the score above `drift_threshold` within one window
// while the slow-moving baseline stays put. Update() publishes
// qps.model.drift.{score,qerr_p50,qerr_p95} gauges (the retraining-trigger
// signal of ROADMAP item 4) and then folds the window into the baseline.
//
// Recording takes a short mutex: samples arrive at per-request (not
// per-operator) rate and only when the caller opted into execution
// feedback, so a lock is fine — the exactness it buys makes the quantile
// tests deterministic.

#ifndef QPS_OBS_ACCURACY_H_
#define QPS_OBS_ACCURACY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace qps {
namespace obs {

struct AccuracyOptions {
  /// Ring capacity per backend; the oldest sample is overwritten.
  int capacity = 512;
  /// Samples older than this fall out of every quantile/drift computation.
  double window_ms = 30000.0;
  /// EWMA weight of the newest window median when updating the baseline.
  double baseline_alpha = 0.2;
  /// Update() reports drifted when drift_score >= this.
  double drift_threshold = 2.0;
  /// Record every Nth Observe() call (1 = all). Sampling happens before
  /// the lock, so a high stride keeps overhead negligible.
  int sample_every = 1;
  /// Injectable time source; nullptr = Clock::Default().
  const Clock* clock = nullptr;
};

/// One prediction/actual pair from a served + executed request.
struct AccuracySample {
  std::string backend;        ///< planner backend that produced the plan
  double predicted_rows = 0;  ///< model/optimizer root-cardinality estimate
  double actual_rows = 0;     ///< executed root cardinality
  double predicted_ms = 0;    ///< predicted runtime (model score)
  double actual_ms = 0;       ///< simulated/measured runtime
};

class AccuracyTracker {
 public:
  struct Report {
    int64_t samples = 0;         ///< samples inside the window
    double qerr_p50 = 0.0;       ///< cardinality q-error quantiles
    double qerr_p95 = 0.0;
    double runtime_qerr_p50 = 0.0;
    double baseline_p50 = 0.0;   ///< EWMA reference the score divides by
    double drift_score = 0.0;    ///< ~1.0 healthy; see header comment
    bool drifted = false;
  };

  explicit AccuracyTracker(AccuracyOptions opts = {});

  /// Process-wide tracker fed by exec::Executor::ExplainAnalyze. Default
  /// options; never destroyed.
  static AccuracyTracker& Global();

  /// Applies the sampling stride, then records. Returns true when the
  /// sample was kept. Thread-safe.
  bool Observe(const AccuracySample& sample);

  /// Recomputes windowed quantiles for `backend` ("" = all backends
  /// merged), publishes the qps.model.drift.* gauges (overall form only),
  /// advances the EWMA baseline, and returns the report. Thread-safe;
  /// meant to be called periodically (SnapshotWriter does) or on demand.
  Report Update(const std::string& backend = "");

  /// Quantiles without touching the baseline or the gauges (const view).
  Report Peek(const std::string& backend = "") const;

  /// Backends that have recorded at least one sample.
  std::vector<std::string> Backends() const;

  void Reset();

  const AccuracyOptions& options() const { return opts_; }

 private:
  struct Entry {
    double at_ms = 0.0;  ///< clock timestamp at Observe
    double qerr_rows = 1.0;
    double qerr_ms = 1.0;
  };
  struct Ring {
    std::vector<Entry> entries;  ///< capacity-bounded, oldest overwritten
    size_t next = 0;
    int64_t recorded = 0;
  };

  const Clock& clock() const;
  Report ComputeLocked(const std::string& backend) const;

  AccuracyOptions opts_;
  std::atomic<int64_t> observe_calls_{0};

  mutable std::mutex mu_;
  std::map<std::string, Ring> rings_;
  double baseline_p50_ = 0.0;
  bool baseline_seeded_ = false;
};

}  // namespace obs
}  // namespace qps

#endif  // QPS_OBS_ACCURACY_H_
