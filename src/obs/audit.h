// Copyright 2026 The QPSeeker Authors
//
// Per-request structured audit log: one JSON line per served planning
// request, capturing what an operator needs to reconstruct an incident —
// which query (hash), which backend and ladder stage served it, how the
// deadline/shed policy resolved, and where the latency went (queue vs
// plan, the same timers that feed the serve.* trace spans).
//
//   {"ts_ms":12.5,"query_hash":"9f2c...","backend":"guarded",
//    "stage":"neural","outcome":"ok","deadline_hit":false,
//    "queue_ms":0.12,"plan_ms":24.1,"plans_evaluated":64,
//    "fallback":""}
//
// Append() serializes under a mutex and writes line-buffered; an audit
// line is never torn. Lines appended: qps.obs.audit_records; failed
// writes: qps.obs.audit_errors (the serving path never throws on a full
// disk). The log is safe to share across PlanService workers.

#ifndef QPS_OBS_AUDIT_H_
#define QPS_OBS_AUDIT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace qps {
namespace obs {

/// One served request, as recorded by serve::PlanService.
struct AuditRecord {
  uint64_t query_hash = 0;      ///< core::QueryFingerprint
  std::string backend;          ///< planner backend name
  std::string tenant;           ///< tenant id ("" in single-tenant serving)
  std::string stage;            ///< ladder stage that served ("" if none)
  std::string outcome;          ///< ok | error | shed | shed_degraded
  bool deadline_hit = false;
  double queue_ms = 0.0;        ///< admission -> worker pickup
  double plan_ms = 0.0;         ///< inside Planner::Plan
  int plans_evaluated = 0;
  std::string fallback_reason;  ///< ladder detail; empty when first choice
  /// Machine-readable cause token for non-ok outcomes: "shed_queue_full",
  /// "shed_pool_backstop", "quarantined", "fault_injected", "cancelled".
  /// Mirrors Status::reason(); empty for ok outcomes.
  std::string reason;
};

/// Renders the single-line JSON form (no trailing newline); exposed so
/// tests can assert the schema without a file.
std::string RenderAuditJson(const AuditRecord& record, double ts_ms);

class AuditLog {
 public:
  /// Opens `path` for appending. kIOError when the file cannot be opened.
  static StatusOr<std::unique_ptr<AuditLog>> Open(const std::string& path);

  /// Appends one record as a JSON line. Never fails the caller: write
  /// errors bump qps.obs.audit_errors and are otherwise swallowed.
  void Append(const AuditRecord& record);

  int64_t records_written() const;
  const std::string& path() const { return path_; }

 private:
  explicit AuditLog(std::string path);

  std::string path_;
  mutable std::mutex mu_;
  std::ofstream file_;
  int64_t written_ = 0;
};

}  // namespace obs
}  // namespace qps

#endif  // QPS_OBS_AUDIT_H_
