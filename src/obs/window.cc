// Copyright 2026 The QPSeeker Authors

#include "obs/window.h"

#include <algorithm>
#include <cstring>

namespace qps {
namespace obs {

namespace {

std::atomic<bool> g_windowed_enabled{true};

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(old_bits,
                                      DoubleBits(BitsDouble(old_bits) + delta),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

int64_t EpochFromNanos(int64_t now_ns, double slot_width_ms) {
  // Slot width in ns; widths below 1 ms are clamped so the division stays
  // well-defined even for degenerate options.
  const int64_t width_ns =
      std::max<int64_t>(1'000'000, static_cast<int64_t>(slot_width_ms * 1e6));
  return now_ns / width_ns;
}

int NormalizedSlots(int slots) { return std::max(1, slots); }

}  // namespace

void SetWindowedEnabled(bool enabled) {
  g_windowed_enabled.store(enabled, std::memory_order_relaxed);
}

bool WindowedEnabled() {
  return g_windowed_enabled.load(std::memory_order_relaxed);
}

// ---- WindowedCounter ----------------------------------------------------

WindowedCounter::WindowedCounter(WindowOptions opts)
    : opts_(opts), slots_(static_cast<size_t>(NormalizedSlots(opts.slots))) {
  opts_.slots = NormalizedSlots(opts_.slots);
  created_ns_ = clock().NowNanos();
}

const Clock& WindowedCounter::clock() const {
  return opts_.clock != nullptr ? *opts_.clock : *Clock::Default();
}

int64_t WindowedCounter::EpochNow() const {
  return EpochFromNanos(clock().NowNanos(), opts_.slot_width_ms);
}

void WindowedCounter::Increment(int64_t delta) {
  if (!WindowedEnabled()) return;
  const int64_t epoch = EpochNow();
  Slot& slot = slots_[static_cast<size_t>(epoch % opts_.slots)];
  int64_t seen = slot.epoch.load(std::memory_order_relaxed);
  if (seen != epoch) {
    // Claim the rotation; the winner zeroes the slot. A concurrent add that
    // slips in before the zeroing is lost — bounded, documented skew.
    if (slot.epoch.compare_exchange_strong(seen, epoch,
                                           std::memory_order_relaxed)) {
      slot.value.store(0, std::memory_order_relaxed);
    }
  }
  slot.value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t WindowedCounter::Total() const {
  const int64_t epoch = EpochNow();
  const int64_t oldest = epoch - opts_.slots + 1;
  int64_t total = 0;
  for (const Slot& slot : slots_) {
    const int64_t slot_epoch = slot.epoch.load(std::memory_order_relaxed);
    if (slot_epoch >= oldest && slot_epoch <= epoch) {
      total += slot.value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double WindowedCounter::RatePerSec() const {
  const double lifetime_ms =
      static_cast<double>(clock().NowNanos() - created_ns_) * 1e-6;
  const double covered_ms = std::min(window_span_ms(), lifetime_ms);
  if (covered_ms <= 0.0) return 0.0;
  return static_cast<double>(Total()) / (covered_ms * 1e-3);
}

// ---- WindowedHistogram --------------------------------------------------

WindowedHistogram::WindowedHistogram(WindowOptions opts)
    : opts_(opts), slots_(static_cast<size_t>(NormalizedSlots(opts.slots))) {
  opts_.slots = NormalizedSlots(opts_.slots);
  created_ns_ = clock().NowNanos();
}

const Clock& WindowedHistogram::clock() const {
  return opts_.clock != nullptr ? *opts_.clock : *Clock::Default();
}

int64_t WindowedHistogram::EpochNow() const {
  return EpochFromNanos(clock().NowNanos(), opts_.slot_width_ms);
}

void WindowedHistogram::Record(double value_ms) {
  if (!WindowedEnabled()) return;
  if (value_ms != value_ms) return;  // NaN
  const int64_t epoch = EpochNow();
  Slot& slot = slots_[static_cast<size_t>(epoch % opts_.slots)];
  int64_t seen = slot.epoch.load(std::memory_order_relaxed);
  if (seen != epoch) {
    if (slot.epoch.compare_exchange_strong(seen, epoch,
                                           std::memory_order_relaxed)) {
      for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum_bits.store(0, std::memory_order_relaxed);
    }
  }
  int bucket = metrics::Histogram::kNumBuckets;
  for (int i = 0; i < metrics::Histogram::kNumBuckets; ++i) {
    if (value_ms < metrics::Histogram::BucketUpperBound(i)) {
      bucket = i;
      break;
    }
  }
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&slot.sum_bits, value_ms);
}

metrics::HistogramSnapshot WindowedHistogram::SnapshotWindow() const {
  const int64_t epoch = EpochNow();
  const int64_t oldest = epoch - opts_.slots + 1;
  metrics::HistogramSnapshot out;
  out.buckets.assign(metrics::Histogram::kNumBuckets + 1, 0);
  for (const Slot& slot : slots_) {
    const int64_t slot_epoch = slot.epoch.load(std::memory_order_relaxed);
    if (slot_epoch < oldest || slot_epoch > epoch) continue;
    for (int i = 0; i <= metrics::Histogram::kNumBuckets; ++i) {
      out.buckets[static_cast<size_t>(i)] +=
          slot.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += slot.count.load(std::memory_order_relaxed);
    out.sum += BitsDouble(slot.sum_bits.load(std::memory_order_relaxed));
  }
  return out;
}

double WindowedHistogram::CoveredSeconds() const {
  const double lifetime_ms =
      static_cast<double>(clock().NowNanos() - created_ns_) * 1e-6;
  return std::min(window_span_ms(), lifetime_ms) * 1e-3;
}

double WindowedHistogram::RatePerSec() const {
  const double covered_s = CoveredSeconds();
  if (covered_s <= 0.0) return 0.0;
  return static_cast<double>(SnapshotWindow().count) / covered_s;
}

// ---- WindowRegistry -----------------------------------------------------

WindowRegistry& WindowRegistry::Global() {
  static WindowRegistry* registry = new WindowRegistry();
  return *registry;
}

WindowedCounter* WindowRegistry::GetCounter(const std::string& name,
                                            WindowOptions opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<WindowedCounter>(opts);
  return slot.get();
}

WindowedHistogram* WindowRegistry::GetHistogram(const std::string& name,
                                                WindowOptions opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<WindowedHistogram>(opts);
  return slot.get();
}

WindowSnapshot WindowRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    WindowSnapshot::CounterView view;
    view.name = name;
    view.total = counter->Total();
    view.rate_per_sec = counter->RatePerSec();
    snap.counters.push_back(std::move(view));
  }
  for (const auto& [name, hist] : histograms_) {
    WindowSnapshot::HistogramView view;
    view.name = name;
    view.rate_per_sec = hist->RatePerSec();
    view.hist = hist->SnapshotWindow();
    view.hist.name = name;
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

}  // namespace obs
}  // namespace qps
