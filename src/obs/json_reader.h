// Copyright 2026 The QPSeeker Authors
//
// Minimal JSON reader for the observability surface's own documents: the
// metrics JSON (metrics::RenderJson), the periodic obs snapshots
// (obs::RenderObsJson), and the audit log lines — all emitted by this
// process, so the reader only needs standard JSON (objects, arrays,
// strings, numbers, booleans, null; no comments, no trailing commas).
// qps_top and the round-trip tests parse through this instead of fragile
// substring scans.

#ifndef QPS_OBS_JSON_READER_H_
#define QPS_OBS_JSON_READER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace qps {
namespace obs {

/// One parsed JSON value. Object members keep map ordering (sorted by
/// key), which is all the consumers need.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Dotted-path lookup ("window.histograms"); nullptr when any hop is
  /// missing.
  const JsonValue* FindPath(const std::string& dotted_path) const;

  /// Number at `key`, or `fallback` when absent / not a number.
  double NumberOr(const std::string& key, double fallback) const;

  /// String at `key`, or `fallback` when absent / not a string.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document. kInvalidArgument with a position on malformed
/// input or trailing garbage.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace obs
}  // namespace qps

#endif  // QPS_OBS_JSON_READER_H_
