// Copyright 2026 The QPSeeker Authors
//
// Status-board formatting for the qps_top CLI. The board is computed from
// one (or two consecutive) obs JSON snapshots (obs::RenderObsJson): the
// current document provides levels (inflight, queue depth, windowed
// percentiles, drift, breaker state), and the previous one — when given —
// provides inter-poll deltas (throughput from the cumulative request
// counter). Kept in the library, not the binary, so the rendering is unit
// tested against known documents.

#ifndef QPS_OBS_TOP_H_
#define QPS_OBS_TOP_H_

#include <string>

#include "obs/json_reader.h"

namespace qps {
namespace obs {

/// Renders the textual status board. `prev` may be null (first poll; the
/// throughput row then falls back to the windowed rate). `poll_s` is the
/// wall time between the two snapshots, for delta rates.
std::string FormatTopBoard(const JsonValue& cur, const JsonValue* prev,
                           double poll_s);

}  // namespace obs
}  // namespace qps

#endif  // QPS_OBS_TOP_H_
