// Copyright 2026 The QPSeeker Authors

#include "obs/accuracy.h"

#include <algorithm>
#include <atomic>

#include "eval/metrics.h"
#include "util/metrics.h"

namespace qps {
namespace obs {

namespace {

/// Pre-resolved drift gauges (DESIGN.md §8 naming convention).
struct DriftMetrics {
  metrics::Gauge* score;
  metrics::Gauge* qerr_p50;
  metrics::Gauge* qerr_p95;
  metrics::Counter* samples;

  static const DriftMetrics& Get() {
    static const DriftMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      DriftMetrics out;
      out.score = reg.GetGauge("qps.model.drift.score");
      out.qerr_p50 = reg.GetGauge("qps.model.drift.qerr_p50");
      out.qerr_p95 = reg.GetGauge("qps.model.drift.qerr_p95");
      out.samples = reg.GetCounter("qps.model.drift.samples");
      return out;
    }();
    return m;
  }
};

}  // namespace

AccuracyTracker::AccuracyTracker(AccuracyOptions opts) : opts_(opts) {
  opts_.capacity = std::max(1, opts_.capacity);
  opts_.sample_every = std::max(1, opts_.sample_every);
}

AccuracyTracker& AccuracyTracker::Global() {
  static AccuracyTracker* tracker = new AccuracyTracker();
  return *tracker;
}

const Clock& AccuracyTracker::clock() const {
  return opts_.clock != nullptr ? *opts_.clock : *Clock::Default();
}

bool AccuracyTracker::Observe(const AccuracySample& sample) {
  const int64_t call =
      observe_calls_.fetch_add(1, std::memory_order_relaxed);
  if (call % opts_.sample_every != 0) return false;

  Entry entry;
  entry.at_ms = clock().NowMillis();
  entry.qerr_rows = eval::QError(sample.predicted_rows, sample.actual_rows);
  entry.qerr_ms = eval::QError(sample.predicted_ms, sample.actual_ms, 1e-3);

  std::lock_guard<std::mutex> lock(mu_);
  Ring& ring = rings_[sample.backend];
  if (ring.entries.size() < static_cast<size_t>(opts_.capacity)) {
    ring.entries.push_back(entry);
  } else {
    ring.entries[ring.next] = entry;
  }
  ring.next = (ring.next + 1) % static_cast<size_t>(opts_.capacity);
  ring.recorded += 1;
  DriftMetrics::Get().samples->Increment();
  return true;
}

AccuracyTracker::Report AccuracyTracker::ComputeLocked(
    const std::string& backend) const {
  const double now_ms = clock().NowMillis();
  const double oldest_ms = now_ms - opts_.window_ms;
  std::vector<double> qerr_rows;
  std::vector<double> qerr_ms;
  for (const auto& [name, ring] : rings_) {
    if (!backend.empty() && name != backend) continue;
    for (const Entry& e : ring.entries) {
      if (e.at_ms < oldest_ms) continue;
      qerr_rows.push_back(e.qerr_rows);
      qerr_ms.push_back(e.qerr_ms);
    }
  }

  Report report;
  report.samples = static_cast<int64_t>(qerr_rows.size());
  if (report.samples == 0) return report;
  const auto rows_p = eval::ComputePercentiles(std::move(qerr_rows));
  const auto ms_p = eval::ComputePercentiles(std::move(qerr_ms));
  report.qerr_p50 = rows_p.p50;
  report.qerr_p95 = rows_p.p95;
  report.runtime_qerr_p50 = ms_p.p50;
  return report;
}

AccuracyTracker::Report AccuracyTracker::Update(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  Report report = ComputeLocked(backend);
  if (report.samples > 0) {
    if (!baseline_seeded_) {
      baseline_p50_ = report.qerr_p50;
      baseline_seeded_ = true;
    }
    report.baseline_p50 = baseline_p50_;
    report.drift_score = report.qerr_p50 / std::max(baseline_p50_, 1.0);
    report.drifted = report.drift_score >= opts_.drift_threshold;
    // Publish, then fold the window into the slow-moving baseline.
    const DriftMetrics& dm = DriftMetrics::Get();
    dm.score->Set(report.drift_score);
    dm.qerr_p50->Set(report.qerr_p50);
    dm.qerr_p95->Set(report.qerr_p95);
    baseline_p50_ = (1.0 - opts_.baseline_alpha) * baseline_p50_ +
                    opts_.baseline_alpha * report.qerr_p50;
  }
  return report;
}

AccuracyTracker::Report AccuracyTracker::Peek(const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mu_);
  Report report = ComputeLocked(backend);
  if (report.samples > 0 && baseline_seeded_) {
    report.baseline_p50 = baseline_p50_;
    report.drift_score = report.qerr_p50 / std::max(baseline_p50_, 1.0);
    report.drifted = report.drift_score >= opts_.drift_threshold;
  }
  return report;
}

std::vector<std::string> AccuracyTracker::Backends() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, ring] : rings_) {
    if (ring.recorded > 0) out.push_back(name);
  }
  return out;
}

void AccuracyTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  baseline_p50_ = 0.0;
  baseline_seeded_ = false;
  observe_calls_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace qps
