// Copyright 2026 The QPSeeker Authors

#include "obs/export.h"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/accuracy.h"
#include "util/io.h"

namespace qps {
namespace obs {

namespace {

/// Dots (and anything else outside the Prometheus name alphabet) become
/// underscores: qps.serve.latency_ms -> qps_serve_latency_ms.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Full-precision doubles so parsed values compare exactly equal; non-
/// finite values render as Prometheus' +Inf/-Inf/NaN tokens.
std::string PromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendTyped(std::string* out, const std::string& prom_name,
                 const char* type) {
  *out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string RenderPrometheus(const metrics::Snapshot& snapshot,
                             const WindowSnapshot* window) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = PromName(name);
    AppendTyped(&out, pname, "counter");
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = PromName(name);
    AppendTyped(&out, pname, "gauge");
    out += pname + " " + PromDouble(value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string pname = PromName(h.name);
    AppendTyped(&out, pname, "histogram");
    // Prometheus buckets are cumulative: each `le` series counts every
    // observation <= the bound, and le="+Inf" equals _count.
    int64_t cumulative = 0;
    for (int i = 0; i < metrics::Histogram::kNumBuckets; ++i) {
      cumulative += h.buckets[static_cast<size_t>(i)];
      out += pname + "_bucket{le=\"" +
             PromDouble(metrics::Histogram::BucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + PromDouble(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  if (window != nullptr) {
    for (const auto& c : window->counters) {
      const std::string pname = PromName(c.name);
      AppendTyped(&out, pname + "_window_total", "gauge");
      out += pname + "_window_total " + std::to_string(c.total) + "\n";
      AppendTyped(&out, pname + "_window_rate", "gauge");
      out += pname + "_window_rate " + PromDouble(c.rate_per_sec) + "\n";
    }
    for (const auto& h : window->histograms) {
      const std::string pname = PromName(h.name);
      AppendTyped(&out, pname + "_window_count", "gauge");
      out += pname + "_window_count " + std::to_string(h.hist.count) + "\n";
      AppendTyped(&out, pname + "_window_rate", "gauge");
      out += pname + "_window_rate " + PromDouble(h.rate_per_sec) + "\n";
      for (const double p : {50.0, 90.0, 99.0}) {
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), "_window_p%.0f", p);
        AppendTyped(&out, pname + suffix, "gauge");
        out += pname + suffix + " " + PromDouble(h.hist.Percentile(p)) + "\n";
      }
    }
  }
  return out;
}

std::string PromSample::Key() const {
  std::string key = name;
  if (!labels.empty()) {
    key += "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ",";
      key += labels[i].first + "=\"" + labels[i].second + "\"";
    }
    key += "}";
  }
  return key;
}

StatusOr<std::vector<PromSample>> ParsePrometheus(const std::string& text) {
  std::vector<PromSample> samples;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    const auto fail = [&](const std::string& what) {
      return Status::InvalidArgument("prometheus line " +
                                     std::to_string(line_no) + ": " + what);
    };

    PromSample sample;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0) return fail("missing metric name");
    sample.name = line.substr(0, i);

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const size_t eq = line.find('=', i);
        if (eq == std::string::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          return fail("malformed label");
        }
        const std::string label_name = line.substr(i, eq - i);
        std::string label_value;
        size_t j = eq + 2;
        for (; j < line.size() && line[j] != '"'; ++j) {
          if (line[j] == '\\' && j + 1 < line.size()) {
            ++j;
            if (line[j] == 'n') {
              label_value.push_back('\n');
              continue;
            }
          }
          label_value.push_back(line[j]);
        }
        if (j >= line.size()) return fail("unterminated label value");
        sample.labels.emplace_back(label_name, label_value);
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') return fail("unterminated labels");
      ++i;
    }

    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return fail("missing sample value");
    const std::string value_str = line.substr(i);
    if (value_str == "+Inf") {
      sample.value = HUGE_VAL;
    } else if (value_str == "-Inf") {
      sample.value = -HUGE_VAL;
    } else if (value_str == "NaN") {
      sample.value = std::nan("");
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str()) return fail("bad sample value");
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::string RenderObsJson(int64_t seq) {
  const metrics::Snapshot metric_snap =
      metrics::Registry::Global().TakeSnapshot();
  const WindowSnapshot window_snap = WindowRegistry::Global().TakeSnapshot();
  const AccuracyTracker::Report drift = AccuracyTracker::Global().Peek();

  std::string out = "{\"ts_ms\":" +
                    JsonDouble(Clock::Default()->NowMillis()) +
                    ",\"seq\":" + std::to_string(seq) + ",\"metrics\":";
  out += metrics::RenderJson(metric_snap);

  out += ",\"window\":{\"counters\":{";
  bool first = true;
  for (const auto& c : window_snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(c.name) + "\":{\"total\":" +
           std::to_string(c.total) +
           ",\"rate\":" + JsonDouble(c.rate_per_sec) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : window_snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(h.name) + "\":{\"count\":" +
           std::to_string(h.hist.count) +
           ",\"rate\":" + JsonDouble(h.rate_per_sec) +
           ",\"p50\":" + JsonDouble(h.hist.Percentile(50)) +
           ",\"p90\":" + JsonDouble(h.hist.Percentile(90)) +
           ",\"p99\":" + JsonDouble(h.hist.Percentile(99)) + "}";
  }
  out += "}},\"drift\":{\"score\":" + JsonDouble(drift.drift_score) +
         ",\"qerr_p50\":" + JsonDouble(drift.qerr_p50) +
         ",\"qerr_p95\":" + JsonDouble(drift.qerr_p95) +
         ",\"samples\":" + std::to_string(drift.samples) +
         ",\"drifted\":" + (drift.drifted ? "true" : "false") + "}}";
  return out;
}

// ---- SnapshotWriter -----------------------------------------------------

namespace {

/// Shared waiter so Stop() interrupts the interval sleep promptly.
struct WriterWait {
  std::mutex mu;
  std::condition_variable cv;
};

WriterWait& GetWriterWait() {
  static WriterWait* wait = new WriterWait();
  return *wait;
}

}  // namespace

SnapshotWriter::SnapshotWriter(std::string path, double interval_ms)
    : path_(std::move(path)), interval_ms_(interval_ms > 0 ? interval_ms : 1000.0) {}

SnapshotWriter::~SnapshotWriter() { Stop(); }

void SnapshotWriter::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotWriter::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  GetWriterWait().cv.notify_all();
  thread_.join();
}

Status SnapshotWriter::WriteOnce() {
  // Refresh the drift gauges so every snapshot carries a current score.
  AccuracyTracker::Global().Update();
  const int64_t seq = written_.load(std::memory_order_relaxed) + 1;
  QPS_RETURN_IF_ERROR(io::AtomicWriteFile(path_, RenderObsJson(seq) + "\n"));
  written_.store(seq, std::memory_order_relaxed);
  return Status::OK();
}

void SnapshotWriter::Loop() {
  static metrics::Counter* const write_failures =
      metrics::Registry::Global().GetCounter("qps.obs.snapshot_failures");
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!WriteOnce().ok()) write_failures->Increment();
    WriterWait& wait = GetWriterWait();
    std::unique_lock<std::mutex> lock(wait.mu);
    wait.cv.wait_for(lock,
                     std::chrono::milliseconds(static_cast<int64_t>(interval_ms_)),
                     [this] { return stop_.load(std::memory_order_relaxed); });
  }
}

}  // namespace obs
}  // namespace qps
