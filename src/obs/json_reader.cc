// Copyright 2026 The QPSeeker Authors

#include "obs/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace qps {
namespace obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it != object_.end() ? &it->second : nullptr;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted_path) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr && start <= dotted_path.size()) {
    const size_t dot = dotted_path.find('.', start);
    const std::string key =
        dotted_path.substr(start, dot == std::string::npos ? std::string::npos
                                                           : dot - start);
    cur = cur->Find(key);
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
  return cur;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->str() : fallback;
}

/// Recursive-descent parser over the raw text. Depth-limited so crafted
/// input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    QPS_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type_ = JsonValue::Type::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeLiteral("true")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->type_ = JsonValue::Type::kNull;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      QPS_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      QPS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      QPS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // Our own emitters only escape control characters; anything in
          // the BMP is encoded as UTF-8 for completeness.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) return Error("expected a value");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = std::strtod(text_.c_str() + start, nullptr);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace obs
}  // namespace qps
