// Copyright 2026 The QPSeeker Authors

#include "baselines/qppnet.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qps {
namespace baselines {

using nn::Tensor;
using nn::Var;

QppNet::QppNet(const storage::Database& db, QppNetConfig config, uint64_t seed)
    : db_(db), config_(config) {
  Rng rng(seed);
  for (int op = 0; op < query::kNumOpTypes; ++op) {
    const int in = kFeatures + config.unit_out;  // features + pooled children
    units_.push_back(std::make_unique<nn::Mlp>(
        in, config.unit_hidden, config.unit_out, /*hidden_layers=*/2, &rng,
        nn::Activation::kRelu, nn::Activation::kNone,
        std::string("unit_") + query::OpTypeName(static_cast<query::OpType>(op))));
    RegisterChild(std::string("u") + std::to_string(op), units_.back().get());
  }
}

Var QppNet::NodeForward(
    const query::Query& q, const query::PlanNode& node,
    std::vector<std::pair<const query::PlanNode*, nn::Var>>* all) const {
  Var child_pool;
  if (node.is_leaf()) {
    child_pool = nn::Constant(Tensor::Zeros(1, config_.unit_out));
  } else {
    Var l = NodeForward(q, *node.left, all);
    Var r = NodeForward(q, *node.right, all);
    child_pool = nn::Scale(nn::Add(l, r), 0.5f);
  }
  Tensor feat(1, kFeatures);
  feat(0, 0) = static_cast<float>(std::log1p(std::max(0.0, node.estimated.cardinality)) / 20.0);
  feat(0, 1) = static_cast<float>(std::log1p(std::max(0.0, node.estimated.cost)) / 20.0);
  if (node.is_leaf()) {
    const auto& t = db_.table(q.relations[static_cast<size_t>(node.rel)].table_id);
    const double rows = static_cast<double>(t.num_rows());
    feat(0, 2) = static_cast<float>(std::log1p(rows) / 20.0);
    feat(0, 3) = rows > 0.0 ? static_cast<float>(std::min(
                                  1.0, node.estimated.cardinality / rows))
                            : 0.0f;
    feat(0, 4) = static_cast<float>(std::log1p(static_cast<double>(t.num_blocks())) / 20.0);
  } else {
    feat(0, 5) = static_cast<float>(node.join_preds.size());
  }
  Var out = units_[static_cast<size_t>(node.op)]->Forward(
      nn::ConcatCols({nn::Constant(feat), child_pool}));
  all->emplace_back(&node, out);
  return out;
}

std::vector<double> QppNet::Train(const std::vector<RuntimeSample>& samples,
                                  uint64_t seed) {
  QPS_CHECK(!samples.empty());
  log_max_runtime_ = 1.0;
  for (const auto& s : samples) {
    s.plan->PostOrder([this](const query::PlanNode& n) {
      log_max_runtime_ =
          std::max(log_max_runtime_, std::log1p(std::max(0.0, n.actual.runtime_ms)));
    });
  }
  nn::Adam adam(Parameters(), config_.learning_rate);
  Rng rng(seed);
  std::vector<const RuntimeSample*> items;
  for (const auto& s : samples) items.push_back(&s);
  std::vector<double> losses;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&items);
    double epoch_loss = 0.0;
    size_t index = 0;
    while (index < items.size()) {
      ZeroGrad();
      const size_t end =
          std::min(items.size(), index + static_cast<size_t>(config_.batch_size));
      for (; index < end; ++index) {
        const auto& s = *items[index];
        std::vector<std::pair<const query::PlanNode*, Var>> all;
        Var root = NodeForward(*s.query, *s.plan, &all);
        const float root_target = static_cast<float>(
            std::log1p(std::max(0.0, s.plan->actual.runtime_ms)) / log_max_runtime_);
        Var loss = nn::MseLoss(nn::Sigmoid(nn::SliceCols(root, 0, 1)),
                               Tensor::Row({root_target}));
        if (config_.subplan_loss_weight > 0.0f && all.size() > 1) {
          std::vector<Var> latencies;
          std::vector<float> targets;
          for (const auto& [node, out] : all) {
            latencies.push_back(nn::Sigmoid(nn::SliceCols(out, 0, 1)));
            targets.push_back(static_cast<float>(
                std::log1p(std::max(0.0, node->actual.runtime_ms)) /
                log_max_runtime_));
          }
          Var sub_loss =
              nn::MseLoss(nn::ConcatCols(latencies), Tensor::Row(targets));
          loss = nn::Add(loss, nn::Scale(sub_loss, config_.subplan_loss_weight));
        }
        epoch_loss += loss->value(0, 0);
        nn::Backward(loss);
      }
      adam.ClipGradNorm(5.0f);
      adam.Step();
    }
    losses.push_back(epoch_loss / static_cast<double>(items.size()));
  }
  return losses;
}

double QppNet::Predict(const query::Query& q, const query::PlanNode& plan) const {
  std::vector<std::pair<const query::PlanNode*, Var>> all;
  Var root = NodeForward(q, plan, &all);
  const float y = nn::Sigmoid(nn::SliceCols(root, 0, 1))->value(0, 0);
  return std::expm1(static_cast<double>(y) * log_max_runtime_);
}

}  // namespace baselines
}  // namespace qps
