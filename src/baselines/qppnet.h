// Copyright 2026 The QPSeeker Authors
//
// QPPNet (Marcus & Papaemmanouil, VLDB 2019): the plan-structured runtime
// predictor the paper compares against in Table 5. One small MLP ("neural
// unit") per physical operator type; units are assembled dynamically into a
// network isomorphic to each plan. A unit's input is its operator features
// concatenated with its children's output vectors (mean-pooled); the first
// dimension of each unit's output is the subplan's latency prediction.

#ifndef QPS_BASELINES_QPPNET_H_
#define QPS_BASELINES_QPPNET_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "query/plan.h"
#include "storage/database.h"

namespace qps {
namespace baselines {

struct QppNetConfig {
  int unit_hidden = 32;
  int unit_out = 16;  ///< data vector width; dim 0 is the latency output
  int epochs = 40;
  float learning_rate = 1e-3f;
  int batch_size = 16;
  float subplan_loss_weight = 0.5f;  ///< QPPNet trains every subplan's latency
};

/// A labeled plan (actual.runtime_ms filled per node; estimated stats
/// annotated as input features).
struct RuntimeSample {
  const query::Query* query;
  const query::PlanNode* plan;
};

class QppNet : public nn::Module {
 public:
  QppNet(const storage::Database& db, QppNetConfig config, uint64_t seed);

  std::vector<double> Train(const std::vector<RuntimeSample>& samples, uint64_t seed);

  /// Predicted total runtime (ms) for an annotated plan.
  double Predict(const query::Query& q, const query::PlanNode& plan) const;

 private:
  /// Features per node: op-specific inputs (estimated rows/cost, table size
  /// and selectivity for scans).
  static constexpr int kFeatures = 6;

  nn::Var NodeForward(const query::Query& q, const query::PlanNode& node,
                      std::vector<std::pair<const query::PlanNode*, nn::Var>>* all)
      const;

  const storage::Database& db_;
  QppNetConfig config_;
  std::vector<std::unique_ptr<nn::Mlp>> units_;  ///< one per OpType
  double log_max_runtime_ = 1.0;
};

}  // namespace baselines
}  // namespace qps

#endif  // QPS_BASELINES_QPPNET_H_
