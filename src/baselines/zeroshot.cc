// Copyright 2026 The QPSeeker Authors

#include "baselines/zeroshot.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qps {
namespace baselines {

using nn::Tensor;
using nn::Var;

ZeroShot::ZeroShot(ZeroShotConfig config, uint64_t seed) : config_(config) {
  Rng rng(seed);
  node_mlp_ = std::make_unique<nn::Mlp>(
      kFeatures + query::kNumOpTypes + config.node_dim, config.hidden,
      config.node_dim, /*hidden_layers=*/2, &rng, nn::Activation::kRelu,
      nn::Activation::kRelu, "node");
  head_ = std::make_unique<nn::Mlp>(config.node_dim, config.hidden, 1, 1, &rng,
                                    nn::Activation::kRelu, nn::Activation::kSigmoid,
                                    "head");
  RegisterChild("node", node_mlp_.get());
  RegisterChild("head", head_.get());
}

Var ZeroShot::NodeForward(const storage::Database& db, const query::Query& q,
                          const query::PlanNode& node) const {
  Var child_pool;
  if (node.is_leaf()) {
    child_pool = nn::Constant(Tensor::Zeros(1, config_.node_dim));
  } else {
    Var l = NodeForward(db, q, *node.left);
    Var r = NodeForward(db, q, *node.right);
    child_pool = nn::Scale(nn::Add(l, r), 0.5f);
  }
  Tensor feat(1, kFeatures + query::kNumOpTypes);
  int i = 0;
  feat(0, i + static_cast<int>(node.op)) = 1.0f;
  i += query::kNumOpTypes;
  // Transferable features only: sizes, selectivities, block counts — never
  // table/column identities.
  feat(0, i++) = static_cast<float>(std::log1p(std::max(0.0, node.estimated.cardinality)) / 20.0);
  const double lrows = node.left ? node.left->estimated.cardinality : 0.0;
  const double rrows = node.right ? node.right->estimated.cardinality : 0.0;
  feat(0, i++) = static_cast<float>(std::log1p(std::max(0.0, lrows)) / 20.0);
  feat(0, i++) = static_cast<float>(std::log1p(std::max(0.0, rrows)) / 20.0);
  if (node.is_leaf()) {
    const auto& t = db.table(q.relations[static_cast<size_t>(node.rel)].table_id);
    const double rows = static_cast<double>(t.num_rows());
    feat(0, i++) = static_cast<float>(std::log1p(rows) / 20.0);
    feat(0, i++) = static_cast<float>(std::log1p(static_cast<double>(t.num_blocks())) / 20.0);
    feat(0, i++) = rows > 0.0 ? static_cast<float>(std::min(
                                    1.0, node.estimated.cardinality / rows))
                              : 0.0f;
    feat(0, i++) = static_cast<float>(q.FiltersFor(node.rel).size());
  } else {
    i += 3;
    feat(0, i++) = static_cast<float>(node.join_preds.size());
  }
  feat(0, i++) = node.is_leaf() ? 1.0f : 0.0f;
  return node_mlp_->Forward(nn::ConcatCols({nn::Constant(feat), child_pool}));
}

std::vector<double> ZeroShot::Train(const std::vector<CostSample>& samples,
                                    uint64_t seed) {
  QPS_CHECK(!samples.empty());
  log_max_cost_ = 1.0;
  for (const auto& s : samples) {
    log_max_cost_ =
        std::max(log_max_cost_, std::log1p(std::max(0.0, s.plan->actual.cost)));
  }
  nn::Adam adam(Parameters(), config_.learning_rate);
  Rng rng(seed);
  std::vector<const CostSample*> items;
  for (const auto& s : samples) items.push_back(&s);
  std::vector<double> losses;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&items);
    double epoch_loss = 0.0;
    size_t index = 0;
    while (index < items.size()) {
      ZeroGrad();
      const size_t end =
          std::min(items.size(), index + static_cast<size_t>(config_.batch_size));
      for (; index < end; ++index) {
        const auto& s = *items[index];
        Var pred = head_->Forward(NodeForward(*s.db, *s.query, *s.plan));
        const float target = static_cast<float>(
            std::log1p(std::max(0.0, s.plan->actual.cost)) / log_max_cost_);
        Var loss = nn::MseLoss(pred, Tensor::Row({target}));
        epoch_loss += loss->value(0, 0);
        nn::Backward(loss);
      }
      adam.ClipGradNorm(5.0f);
      adam.Step();
    }
    losses.push_back(epoch_loss / static_cast<double>(items.size()));
  }
  return losses;
}

double ZeroShot::Predict(const storage::Database& db, const query::Query& q,
                         const query::PlanNode& plan) const {
  Var pred = head_->Forward(NodeForward(db, q, plan));
  return std::expm1(static_cast<double>(pred->value(0, 0)) * log_max_cost_);
}

}  // namespace baselines
}  // namespace qps
