// Copyright 2026 The QPSeeker Authors

#include "baselines/mscn.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qps {
namespace baselines {

using nn::Tensor;
using nn::Var;

Mscn::Mscn(const storage::Database& db, MscnConfig config, uint64_t seed)
    : db_(db),
      config_(config),
      num_tables_(db.num_tables()),
      num_joins_(static_cast<int>(db.join_edges().size()) + 1) {
  int offset = 0;
  for (int t = 0; t < db.num_tables(); ++t) {
    column_offset_.push_back(offset);
    offset += static_cast<int>(db.table(t).num_columns());
  }
  num_columns_ = offset;
  Rng rng(seed);
  const int pred_in = num_columns_ + 6 + 1;  // column | op one-hot | value
  rel_mlp_ = std::make_unique<nn::Mlp>(num_tables_, config.hidden, config.set_out,
                                       config.hidden_layers, &rng,
                                       nn::Activation::kRelu, nn::Activation::kRelu,
                                       "rel");
  join_mlp_ = std::make_unique<nn::Mlp>(num_joins_, config.hidden, config.set_out,
                                        config.hidden_layers, &rng,
                                        nn::Activation::kRelu, nn::Activation::kRelu,
                                        "join");
  pred_mlp_ = std::make_unique<nn::Mlp>(pred_in, config.hidden, config.set_out,
                                        config.hidden_layers, &rng,
                                        nn::Activation::kRelu, nn::Activation::kRelu,
                                        "pred");
  out_mlp_ = std::make_unique<nn::Mlp>(3 * config.set_out, config.hidden, 1,
                                       config.hidden_layers, &rng,
                                       nn::Activation::kRelu,
                                       nn::Activation::kSigmoid, "out");
  RegisterChild("rel", rel_mlp_.get());
  RegisterChild("join", join_mlp_.get());
  RegisterChild("pred", pred_mlp_.get());
  RegisterChild("out", out_mlp_.get());
}

Var Mscn::Forward(const query::Query& q) const {
  const int nrel = std::max(1, q.num_relations());
  Tensor rel(nrel, num_tables_);
  Tensor rel_mask(nrel, 1);
  for (int r = 0; r < q.num_relations(); ++r) {
    rel(r, q.relations[static_cast<size_t>(r)].table_id) = 1.0f;
    rel_mask(r, 0) = 1.0f;
  }
  Var rel_pool = nn::MaskedMeanRows(rel_mlp_->Forward(nn::Constant(rel)), rel_mask);

  const int njoin = std::max(1, static_cast<int>(q.joins.size()));
  Tensor join(njoin, num_joins_);
  Tensor join_mask(njoin, 1);
  for (size_t j = 0; j < q.joins.size(); ++j) {
    const int edge = q.joins[j].schema_edge;
    join(static_cast<int64_t>(j), edge >= 0 ? edge : num_joins_ - 1) = 1.0f;
    join_mask(static_cast<int64_t>(j), 0) = 1.0f;
  }
  Var join_pool = nn::MaskedMeanRows(join_mlp_->Forward(nn::Constant(join)), join_mask);

  const int npred = std::max(1, static_cast<int>(q.filters.size()));
  Tensor pred(npred, num_columns_ + 6 + 1);
  Tensor pred_mask(npred, 1);
  for (size_t f = 0; f < q.filters.size(); ++f) {
    const auto& fp = q.filters[f];
    const int table = q.relations[static_cast<size_t>(fp.rel)].table_id;
    const int col = column_offset_[static_cast<size_t>(table)] + fp.column;
    pred(static_cast<int64_t>(f), col) = 1.0f;
    pred(static_cast<int64_t>(f), num_columns_ + static_cast<int>(fp.op)) = 1.0f;
    // Min-max normalized literal (MSCN's value encoding).
    const auto& c = db_.table(table).column(fp.column);
    double lo = 0.0, hi = 1.0;
    if (c.size() > 0) {
      lo = c.GetDouble(0);
      hi = lo;
      for (int64_t r = 0; r < c.size(); ++r) {
        lo = std::min(lo, c.GetDouble(r));
        hi = std::max(hi, c.GetDouble(r));
      }
    }
    const double v = fp.value.AsDouble();
    pred(static_cast<int64_t>(f), num_columns_ + 6) =
        hi > lo ? static_cast<float>(std::clamp((v - lo) / (hi - lo), 0.0, 1.0)) : 0.5f;
    pred_mask(static_cast<int64_t>(f), 0) = 1.0f;
  }
  Var pred_pool = nn::MaskedMeanRows(pred_mlp_->Forward(nn::Constant(pred)), pred_mask);

  return out_mlp_->Forward(nn::ConcatCols({rel_pool, join_pool, pred_pool}));
}

std::vector<double> Mscn::Train(const std::vector<CardinalitySample>& samples,
                                uint64_t seed) {
  QPS_CHECK(!samples.empty());
  log_max_card_ = 1.0;
  for (const auto& s : samples) {
    log_max_card_ = std::max(log_max_card_, std::log1p(std::max(0.0, s.cardinality)));
  }
  nn::Adam adam(Parameters(), config_.learning_rate);
  Rng rng(seed);
  std::vector<const CardinalitySample*> items;
  for (const auto& s : samples) items.push_back(&s);
  std::vector<double> losses;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&items);
    double epoch_loss = 0.0;
    size_t index = 0;
    while (index < items.size()) {
      ZeroGrad();
      const size_t end =
          std::min(items.size(), index + static_cast<size_t>(config_.batch_size));
      for (; index < end; ++index) {
        const auto& s = *items[index];
        const float target = static_cast<float>(
            std::log1p(std::max(0.0, s.cardinality)) / log_max_card_);
        Var loss = nn::MseLoss(Forward(*s.query), Tensor::Row({target}));
        epoch_loss += loss->value(0, 0);
        nn::Backward(loss);
      }
      adam.ClipGradNorm(5.0f);
      adam.Step();
    }
    losses.push_back(epoch_loss / static_cast<double>(items.size()));
  }
  return losses;
}

double Mscn::Predict(const query::Query& q) const {
  const float y = Forward(q)->value(0, 0);
  return std::expm1(static_cast<double>(y) * log_max_card_);
}

}  // namespace baselines
}  // namespace qps
