// Copyright 2026 The QPSeeker Authors
//
// MSCN (Kipf et al., CIDR 2019): the multi-set convolutional cardinality
// estimator the paper compares against in Table 4. Three per-set MLPs
// (relations, joins, predicates) with masked mean pooling, concatenated
// into an output MLP that predicts normalized log cardinality.

#ifndef QPS_BASELINES_MSCN_H_
#define QPS_BASELINES_MSCN_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "query/query.h"
#include "storage/database.h"

namespace qps {
namespace baselines {

struct MscnConfig {
  int hidden = 64;
  int set_out = 32;
  int hidden_layers = 2;
  int epochs = 40;
  float learning_rate = 1e-3f;
  int batch_size = 32;
};

/// A (query, true cardinality) training pair.
struct CardinalitySample {
  const query::Query* query;
  double cardinality;
};

class Mscn : public nn::Module {
 public:
  Mscn(const storage::Database& db, MscnConfig config, uint64_t seed);

  /// Trains on (query, cardinality) pairs; returns per-epoch losses.
  std::vector<double> Train(const std::vector<CardinalitySample>& samples,
                            uint64_t seed);

  /// Predicted cardinality (rows) for a query.
  double Predict(const query::Query& q) const;

 private:
  nn::Var Forward(const query::Query& q) const;

  const storage::Database& db_;
  MscnConfig config_;
  int num_tables_;
  int num_joins_;
  int num_columns_;  ///< global flat column id space
  std::vector<int> column_offset_;  ///< per-table offset into flat ids
  std::unique_ptr<nn::Mlp> rel_mlp_;
  std::unique_ptr<nn::Mlp> join_mlp_;
  std::unique_ptr<nn::Mlp> pred_mlp_;
  std::unique_ptr<nn::Mlp> out_mlp_;
  double log_max_card_ = 1.0;
};

}  // namespace baselines
}  // namespace qps

#endif  // QPS_BASELINES_MSCN_H_
