// Copyright 2026 The QPSeeker Authors
//
// Zero-Shot cost estimation (Hilprecht & Binnig, VLDB 2022): the Table 3
// competitor. Plans are featurized with *transferable* features only (no
// schema one-hots): operator type, log input/output sizes, selectivities,
// table block counts. Shared MLPs do bottom-up message passing and a head
// predicts cost. Trained on several *other* databases + workloads, then
// evaluated on the target database without fine-tuning — the zero-shot
// paradigm.

#ifndef QPS_BASELINES_ZEROSHOT_H_
#define QPS_BASELINES_ZEROSHOT_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "query/plan.h"
#include "storage/database.h"

namespace qps {
namespace baselines {

struct ZeroShotConfig {
  int hidden = 48;
  int node_dim = 24;
  int epochs = 30;
  float learning_rate = 1e-3f;
  int batch_size = 32;
};

/// A labeled plan from a training database (estimated stats annotated,
/// actual.cost is the target).
struct CostSample {
  const storage::Database* db;
  const query::Query* query;
  const query::PlanNode* plan;
};

class ZeroShot : public nn::Module {
 public:
  ZeroShot(ZeroShotConfig config, uint64_t seed);

  /// Trains on plans from (multiple) databases.
  std::vector<double> Train(const std::vector<CostSample>& samples, uint64_t seed);

  /// Predicted plan cost for an unseen database (no fine-tuning).
  double Predict(const storage::Database& db, const query::Query& q,
                 const query::PlanNode& plan) const;

 private:
  static constexpr int kFeatures = 9;

  nn::Var NodeForward(const storage::Database& db, const query::Query& q,
                      const query::PlanNode& node) const;

  ZeroShotConfig config_;
  std::unique_ptr<nn::Mlp> node_mlp_;
  std::unique_ptr<nn::Mlp> head_;
  double log_max_cost_ = 1.0;
};

}  // namespace baselines
}  // namespace qps

#endif  // QPS_BASELINES_ZEROSHOT_H_
