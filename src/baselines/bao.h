// Copyright 2026 The QPSeeker Authors
//
// Bao (Marcus et al., SIGMOD 2021): the RL query-optimizer baseline of
// §7.2. Bao does not plan from scratch; it steers the traditional
// optimizer by choosing a *hint set* (operator enable/disable flags) per
// query, learning a value model of hinted-plan runtime from execution
// experience, with Thompson-sampling-style exploration across retraining
// rounds. Our value model uses pooled plan-tree features in place of the
// original tree convolution (documented substitution).

#ifndef QPS_BASELINES_BAO_H_
#define QPS_BASELINES_BAO_H_

#include <memory>
#include <vector>

#include "exec/executor.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "optimizer/planner.h"
#include "util/status.h"

namespace qps {
namespace baselines {

struct BaoConfig {
  int hidden = 48;
  int epochs_per_round = 25;
  float learning_rate = 2e-3f;
  int arms_per_query = 4;  ///< hinted plans executed per training query
  int rounds = 2;          ///< explore -> retrain cycles
};

class Bao {
 public:
  Bao(const storage::Database& db, const stats::DatabaseStats& stats,
      BaoConfig config, uint64_t seed);

  /// All valid hint sets (>=1 join and >=1 scan operator enabled). With the
  /// paper's 6 flags this yields 49 arms (the paper's SCOPE variant uses 48).
  static std::vector<optimizer::PlanHints> AllArms();

  /// Gains experience by executing hinted plans of the training queries,
  /// then fits the value model (repeated for config.rounds rounds; later
  /// rounds explore around the current best arm, Thompson-style).
  Status TrainOnWorkload(const std::vector<query::Query>& queries,
                         exec::Executor* executor, uint64_t seed);

  /// Inference: plans `q` under every arm, returns the plan whose predicted
  /// runtime is lowest.
  StatusOr<query::PlanPtr> Plan(const query::Query& q) const;

  /// Predicted runtime (ms) of a planned (estimate-annotated) plan.
  double PredictRuntime(const query::PlanNode& plan) const;

  int64_t experience_size() const { return static_cast<int64_t>(features_.size()); }

 private:
  static constexpr int kFeatures = query::kNumOpTypes + 5;

  nn::Tensor Featurize(const query::PlanNode& plan) const;
  void FitValueModel(int epochs, uint64_t seed);

  const storage::Database& db_;
  optimizer::Planner planner_;
  BaoConfig config_;
  std::unique_ptr<nn::Mlp> value_;
  std::vector<nn::Tensor> features_;  ///< experience: plan features
  std::vector<double> runtimes_;      ///< experience: measured runtimes
  double log_max_runtime_ = 1.0;
};

}  // namespace baselines
}  // namespace qps

#endif  // QPS_BASELINES_BAO_H_
