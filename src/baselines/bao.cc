// Copyright 2026 The QPSeeker Authors

#include "baselines/bao.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qps {
namespace baselines {

using nn::Tensor;
using nn::Var;
using optimizer::PlanHints;

Bao::Bao(const storage::Database& db, const stats::DatabaseStats& stats,
         BaoConfig config, uint64_t seed)
    : db_(db), planner_(db, stats), config_(config) {
  Rng rng(seed);
  value_ = std::make_unique<nn::Mlp>(kFeatures, config.hidden, 1, 2, &rng,
                                     nn::Activation::kRelu, nn::Activation::kSigmoid,
                                     "value");
}

std::vector<PlanHints> Bao::AllArms() {
  std::vector<PlanHints> arms;
  for (int j = 1; j < 8; ++j) {      // join flag subsets, non-empty
    for (int s = 1; s < 8; ++s) {    // scan flag subsets, non-empty
      PlanHints h;
      h.enable_hashjoin = j & 1;
      h.enable_mergejoin = j & 2;
      h.enable_nestloop = j & 4;
      h.enable_seqscan = s & 1;
      h.enable_indexscan = s & 2;
      h.enable_bitmapscan = s & 4;
      arms.push_back(h);
    }
  }
  return arms;  // 7 x 7 = 49 valid hint sets
}

Tensor Bao::Featurize(const query::PlanNode& plan) const {
  Tensor f(1, kFeatures);
  int nodes = 0;
  double sum_log_rows = 0.0;
  plan.PostOrder([&](const query::PlanNode& n) {
    f(0, static_cast<int>(n.op)) += 1.0f;
    sum_log_rows += std::log1p(std::max(0.0, n.estimated.cardinality));
    ++nodes;
  });
  // Normalize op counts by node count (tree-conv pooling stand-in).
  for (int i = 0; i < query::kNumOpTypes; ++i) {
    f(0, i) /= static_cast<float>(std::max(1, nodes));
  }
  int i = query::kNumOpTypes;
  f(0, i++) = static_cast<float>(std::log1p(std::max(0.0, plan.estimated.cost)) / 25.0);
  f(0, i++) =
      static_cast<float>(std::log1p(std::max(0.0, plan.estimated.cardinality)) / 25.0);
  f(0, i++) = static_cast<float>(sum_log_rows / (20.0 * std::max(1, nodes)));
  f(0, i++) = static_cast<float>(nodes) / 32.0f;
  f(0, i++) =
      static_cast<float>(std::log1p(std::max(0.0, plan.estimated.runtime_ms)) / 15.0);
  return f;
}

double Bao::PredictRuntime(const query::PlanNode& plan) const {
  Var pred = value_->Forward(nn::Constant(Featurize(plan)));
  return std::expm1(static_cast<double>(pred->value(0, 0)) * log_max_runtime_);
}

void Bao::FitValueModel(int epochs, uint64_t seed) {
  if (features_.empty()) return;
  log_max_runtime_ = 1.0;
  for (double r : runtimes_) {
    log_max_runtime_ = std::max(log_max_runtime_, std::log1p(std::max(0.0, r)));
  }
  nn::Adam adam(value_->Parameters(), config_.learning_rate);
  Rng rng(seed);
  std::vector<size_t> order(features_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    size_t index = 0;
    while (index < order.size()) {
      value_->ZeroGrad();
      const size_t end = std::min(order.size(), index + 32);
      for (; index < end; ++index) {
        const size_t s = order[index];
        const float target = static_cast<float>(
            std::log1p(std::max(0.0, runtimes_[s])) / log_max_runtime_);
        Var loss = nn::MseLoss(value_->Forward(nn::Constant(features_[s])),
                               Tensor::Row({target}));
        nn::Backward(loss);
      }
      adam.Step();
    }
  }
}

Status Bao::TrainOnWorkload(const std::vector<query::Query>& queries,
                            exec::Executor* executor, uint64_t seed) {
  const auto arms = AllArms();
  Rng rng(seed);
  for (int round = 0; round < config_.rounds; ++round) {
    for (const auto& q : queries) {
      // Arm selection: round 0 explores uniformly (plus the no-hint arm);
      // later rounds exploit the value model and explore around it.
      std::vector<size_t> chosen;
      chosen.push_back(arms.size() - 1);  // all-enabled arm is always tried
      if (round > 0) {
        double best = INFINITY;
        size_t best_arm = 0;
        for (size_t a = 0; a < arms.size(); ++a) {
          auto plan = planner_.Plan(q, arms[a]);
          if (!plan.ok()) continue;
          const double pred = PredictRuntime(**plan);
          if (pred < best) {
            best = pred;
            best_arm = a;
          }
        }
        chosen.push_back(best_arm);
      }
      while (chosen.size() < static_cast<size_t>(config_.arms_per_query)) {
        chosen.push_back(rng.UniformInt(arms.size()));
      }
      for (size_t a : chosen) {
        auto plan = planner_.Plan(q, arms[a]);
        if (!plan.ok()) continue;
        auto card = executor->Execute(q, plan->get());
        if (!card.ok()) {
          if (card.status().IsResourceExhausted()) continue;  // skip timeouts
          return card.status();
        }
        features_.push_back(Featurize(**plan));
        runtimes_.push_back((*plan)->actual.runtime_ms);
      }
    }
    FitValueModel(config_.epochs_per_round, seed + static_cast<uint64_t>(round));
  }
  return Status::OK();
}

StatusOr<query::PlanPtr> Bao::Plan(const query::Query& q) const {
  const auto arms = AllArms();
  query::PlanPtr best;
  double best_pred = INFINITY;
  for (const auto& arm : arms) {
    auto plan = planner_.Plan(q, arm);
    if (!plan.ok()) continue;
    const double pred = PredictRuntime(**plan);
    if (pred < best_pred || best == nullptr) {
      best_pred = pred;
      best = std::move(*plan);
    }
  }
  if (best == nullptr) return Status::Internal("no arm produced a plan");
  return best;
}

}  // namespace baselines
}  // namespace qps
